// Package log implements the acceptor state machine of a Multi-Paxos
// replicated log: ballots, promises, and per-slot accepts with ballot
// fencing. It is the storage half of the protocol that
// dfi/internal/consensus builds from DFI flows (paper §6.3); here it is
// factored out as a plain state machine so the flow registry can run
// replicated over the same log without dragging a data-plane dependency
// into the control plane (registry → consensus/log only; the driving
// RPCs are simulated by the caller).
//
// The usual Multi-Paxos specialization applies: one master holds a
// ballot promised by a majority and skips Phase 1 for subsequent slots,
// running only Accept rounds. A new master (after a crash) runs Promise
// on a higher ballot first; acceptors that promised it then reject — by
// ballot comparison — every in-flight Accept of the deposed master,
// which is the fencing that keeps a stale master from committing.
//
// The log is not append-only forever: the driving state machine may
// periodically snapshot itself and install the snapshot on the
// acceptors (CompactTo), which truncates every slot below the snapshot
// index — the standard snapshot-plus-truncate compaction of Multi-Paxos
// and Raft. A compacted acceptor answers Promise with a next slot no
// lower than its snapshot index (a new master must not reuse compacted
// slots) and acknowledges Accepts below it without storing them (the
// command is already reflected in the snapshot).
package log

// Entry is one accepted log slot: the command (an opaque id chosen by
// the caller) and the ballot it was accepted under.
type Entry struct {
	Ballot uint64
	Cmd    uint64
}

// Snapshot is a compacted log prefix: State is the caller's serialized
// state machine with every command below Index applied. The log package
// treats State as opaque bytes; Index is the first slot NOT covered by
// the snapshot.
type Snapshot struct {
	Index int
	State []byte
}

// Acceptor is one replica's acceptor state: the highest ballot promised,
// the highest-ballot entry accepted per retained slot, and the latest
// installed snapshot (slots below Snapshot().Index are truncated). The
// zero ballot is reserved (never promised), so ballots start at 1.
type Acceptor struct {
	id       int
	promised uint64
	accepted map[int]Entry
	snap     Snapshot
}

// NewAcceptor returns an empty acceptor with the given replica id.
func NewAcceptor(id int) *Acceptor {
	return &Acceptor{id: id, accepted: make(map[int]Entry)}
}

// ID returns the replica id.
func (a *Acceptor) ID() int { return a.id }

// Promised returns the highest ballot this acceptor has promised.
func (a *Acceptor) Promised() uint64 { return a.promised }

// Promise asks the acceptor to join ballot b (Phase 1). On success the
// acceptor will reject every Accept below b, and returns the first slot
// past its accepted log — the new master must not place fresh commands
// below it, or it could overwrite choices a prior master already got
// accepted by a majority. On a compacted acceptor the returned slot is
// never below the snapshot index: the truncated prefix was chosen and
// applied, even though no Entry remains to witness it.
func (a *Acceptor) Promise(b uint64) (ok bool, next int) {
	if b <= a.promised {
		return false, 0
	}
	a.promised = b
	return true, a.NextSlot()
}

// Accept asks the acceptor to accept cmd at slot under ballot b
// (Phase 2). Fencing: an acceptor that promised a higher ballot rejects,
// so a deposed master cannot commit. An accept at the promised ballot
// (or above — the acceptor promotes its promise, per the standard
// optimization) overwrites any lower-ballot entry at the slot. An accept
// below the snapshot index is acknowledged without storing anything: the
// slot's command is already part of the installed snapshot, and a
// positive reply keeps a retrying master's majority count correct.
func (a *Acceptor) Accept(b uint64, slot int, cmd uint64) bool {
	if b < a.promised {
		return false
	}
	a.promised = b
	if slot < a.snap.Index {
		return true
	}
	if e, ok := a.accepted[slot]; ok && e.Ballot > b {
		return false
	}
	a.accepted[slot] = Entry{Ballot: b, Cmd: cmd}
	return true
}

// CompactTo installs a snapshot and truncates the log below its index:
// every accepted entry at a slot below s.Index is dropped. Snapshots
// only move forward — installing one at or below the current snapshot
// index is a no-op (a delayed or duplicated install must not resurrect
// truncated state). Reports whether the snapshot was installed.
func (a *Acceptor) CompactTo(s Snapshot) bool {
	if s.Index <= a.snap.Index {
		return false
	}
	a.snap = s
	for slot := range a.accepted {
		if slot < s.Index {
			delete(a.accepted, slot)
		}
	}
	return true
}

// Snapshot returns the latest installed snapshot (zero value when the
// log has never been compacted).
func (a *Acceptor) Snapshot() Snapshot { return a.snap }

// FirstSlot returns the first slot still retained in the log — the
// snapshot index. Slots below it were truncated by CompactTo.
func (a *Acceptor) FirstSlot() int { return a.snap.Index }

// NextSlot returns the first slot past everything this acceptor knows:
// the maximum of its snapshot index and one past its highest accepted
// entry. A recovering replica is caught up from a peer's snapshot plus
// the peer's retained entries in [FirstSlot, NextSlot).
func (a *Acceptor) NextSlot() int {
	next := a.snap.Index
	for slot := range a.accepted {
		if slot+1 > next {
			next = slot + 1
		}
	}
	return next
}

// Accepted returns the entry accepted at slot, if any. Slots below the
// snapshot index report false: their entries were truncated.
func (a *Acceptor) Accepted(slot int) (Entry, bool) {
	e, ok := a.accepted[slot]
	return e, ok
}

// Len returns the number of retained accepted slots; compaction shrinks
// it. The bounded-log property the registry tests assert is
// Len ≤ snapshot cadence + in-flight slack.
func (a *Acceptor) Len() int { return len(a.accepted) }
