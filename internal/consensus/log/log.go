// Package log implements the acceptor state machine of a Multi-Paxos
// replicated log: ballots, promises, and per-slot accepts with ballot
// fencing. It is the storage half of the protocol that
// dfi/internal/consensus builds from DFI flows (paper §6.3); here it is
// factored out as a plain state machine so the flow registry can run
// replicated over the same log without dragging a data-plane dependency
// into the control plane (registry → consensus/log only; the driving
// RPCs are simulated by the caller).
//
// The usual Multi-Paxos specialization applies: one master holds a
// ballot promised by a majority and skips Phase 1 for subsequent slots,
// running only Accept rounds. A new master (after a crash) runs Promise
// on a higher ballot first; acceptors that promised it then reject — by
// ballot comparison — every in-flight Accept of the deposed master,
// which is the fencing that keeps a stale master from committing.
package log

// Entry is one accepted log slot: the command (an opaque id chosen by
// the caller) and the ballot it was accepted under.
type Entry struct {
	Ballot uint64
	Cmd    uint64
}

// Acceptor is one replica's acceptor state: the highest ballot promised
// and the highest-ballot entry accepted per slot. The zero ballot is
// reserved (never promised), so ballots start at 1.
type Acceptor struct {
	id       int
	promised uint64
	accepted map[int]Entry
}

// NewAcceptor returns an empty acceptor with the given replica id.
func NewAcceptor(id int) *Acceptor {
	return &Acceptor{id: id, accepted: make(map[int]Entry)}
}

// ID returns the replica id.
func (a *Acceptor) ID() int { return a.id }

// Promised returns the highest ballot this acceptor has promised.
func (a *Acceptor) Promised() uint64 { return a.promised }

// Promise asks the acceptor to join ballot b (Phase 1). On success the
// acceptor will reject every Accept below b, and returns the first slot
// past its accepted log — the new master must not place fresh commands
// below it, or it could overwrite choices a prior master already got
// accepted by a majority.
func (a *Acceptor) Promise(b uint64) (ok bool, next int) {
	if b <= a.promised {
		return false, 0
	}
	a.promised = b
	for slot := range a.accepted {
		if slot+1 > next {
			next = slot + 1
		}
	}
	return true, next
}

// Accept asks the acceptor to accept cmd at slot under ballot b
// (Phase 2). Fencing: an acceptor that promised a higher ballot rejects,
// so a deposed master cannot commit. An accept at the promised ballot
// (or above — the acceptor promotes its promise, per the standard
// optimization) overwrites any lower-ballot entry at the slot.
func (a *Acceptor) Accept(b uint64, slot int, cmd uint64) bool {
	if b < a.promised {
		return false
	}
	a.promised = b
	if e, ok := a.accepted[slot]; ok && e.Ballot > b {
		return false
	}
	a.accepted[slot] = Entry{Ballot: b, Cmd: cmd}
	return true
}

// Accepted returns the entry accepted at slot, if any.
func (a *Acceptor) Accepted(slot int) (Entry, bool) {
	e, ok := a.accepted[slot]
	return e, ok
}

// Len returns the number of accepted slots.
func (a *Acceptor) Len() int { return len(a.accepted) }
