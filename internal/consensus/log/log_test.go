package log

import "testing"

func TestPromiseBallotFencing(t *testing.T) {
	a := NewAcceptor(0)
	if a.ID() != 0 {
		t.Fatalf("ID = %d", a.ID())
	}
	if ok, _ := a.Promise(1); !ok {
		t.Fatal("first promise rejected")
	}
	if ok, _ := a.Promise(1); ok {
		t.Fatal("re-promise at the same ballot accepted")
	}
	if ok, _ := a.Promise(0); ok {
		t.Fatal("promise at ballot 0 accepted")
	}
	if ok, _ := a.Promise(3); !ok {
		t.Fatal("higher-ballot promise rejected")
	}
	if a.Promised() != 3 {
		t.Fatalf("promised = %d, want 3", a.Promised())
	}
}

func TestAcceptFencedByPromise(t *testing.T) {
	a := NewAcceptor(0)
	a.Promise(2)
	if a.Accept(1, 0, 7) {
		t.Fatal("accept below the promised ballot succeeded")
	}
	if !a.Accept(2, 0, 7) {
		t.Fatal("accept at the promised ballot rejected")
	}
	e, ok := a.Accepted(0)
	if !ok || e.Cmd != 7 || e.Ballot != 2 {
		t.Fatalf("accepted = %+v, %v", e, ok)
	}
}

func TestAcceptPromotesPromise(t *testing.T) {
	// The standard optimization: an Accept above the promise implies the
	// promise, so a deposed master's lower-ballot Accepts are rejected
	// afterwards.
	a := NewAcceptor(0)
	a.Promise(1)
	if !a.Accept(5, 0, 1) {
		t.Fatal("higher-ballot accept rejected")
	}
	if a.Promised() != 5 {
		t.Fatalf("promised = %d, want 5", a.Promised())
	}
	if a.Accept(2, 1, 9) {
		t.Fatal("stale master's accept succeeded after promotion")
	}
}

func TestHigherBallotEntryNotOverwritten(t *testing.T) {
	a := NewAcceptor(0)
	a.Accept(5, 3, 42)
	// A replayed lower-ballot accept at an already-decided slot must not
	// replace the higher-ballot entry. (Unreachable through Promise-first
	// flows, but the acceptor defends its own invariant.)
	a.promised = 1
	if a.Accept(1, 3, 9) {
		t.Fatal("lower-ballot overwrite of a higher-ballot entry succeeded")
	}
	e, _ := a.Accepted(3)
	if e.Cmd != 42 || e.Ballot != 5 {
		t.Fatalf("entry = %+v, want cmd 42 at ballot 5", e)
	}
}

func TestPromiseReportsNextFreeSlot(t *testing.T) {
	// A new master must place fresh commands past every slot the old
	// master got accepted here, or it could overwrite committed entries.
	a := NewAcceptor(1)
	a.Promise(1)
	a.Accept(1, 0, 10)
	a.Accept(1, 1, 11)
	a.Accept(1, 4, 14) // gap: slots 2,3 never reached this replica
	ok, next := a.Promise(2)
	if !ok {
		t.Fatal("promise rejected")
	}
	if next != 5 {
		t.Fatalf("next = %d, want 5 (past the highest accepted slot)", next)
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d, want 3", a.Len())
	}
}
