package log

import "testing"

func TestPromiseBallotFencing(t *testing.T) {
	a := NewAcceptor(0)
	if a.ID() != 0 {
		t.Fatalf("ID = %d", a.ID())
	}
	if ok, _ := a.Promise(1); !ok {
		t.Fatal("first promise rejected")
	}
	if ok, _ := a.Promise(1); ok {
		t.Fatal("re-promise at the same ballot accepted")
	}
	if ok, _ := a.Promise(0); ok {
		t.Fatal("promise at ballot 0 accepted")
	}
	if ok, _ := a.Promise(3); !ok {
		t.Fatal("higher-ballot promise rejected")
	}
	if a.Promised() != 3 {
		t.Fatalf("promised = %d, want 3", a.Promised())
	}
}

func TestAcceptFencedByPromise(t *testing.T) {
	a := NewAcceptor(0)
	a.Promise(2)
	if a.Accept(1, 0, 7) {
		t.Fatal("accept below the promised ballot succeeded")
	}
	if !a.Accept(2, 0, 7) {
		t.Fatal("accept at the promised ballot rejected")
	}
	e, ok := a.Accepted(0)
	if !ok || e.Cmd != 7 || e.Ballot != 2 {
		t.Fatalf("accepted = %+v, %v", e, ok)
	}
}

func TestAcceptPromotesPromise(t *testing.T) {
	// The standard optimization: an Accept above the promise implies the
	// promise, so a deposed master's lower-ballot Accepts are rejected
	// afterwards.
	a := NewAcceptor(0)
	a.Promise(1)
	if !a.Accept(5, 0, 1) {
		t.Fatal("higher-ballot accept rejected")
	}
	if a.Promised() != 5 {
		t.Fatalf("promised = %d, want 5", a.Promised())
	}
	if a.Accept(2, 1, 9) {
		t.Fatal("stale master's accept succeeded after promotion")
	}
}

func TestHigherBallotEntryNotOverwritten(t *testing.T) {
	a := NewAcceptor(0)
	a.Accept(5, 3, 42)
	// A replayed lower-ballot accept at an already-decided slot must not
	// replace the higher-ballot entry. (Unreachable through Promise-first
	// flows, but the acceptor defends its own invariant.)
	a.promised = 1
	if a.Accept(1, 3, 9) {
		t.Fatal("lower-ballot overwrite of a higher-ballot entry succeeded")
	}
	e, _ := a.Accepted(3)
	if e.Cmd != 42 || e.Ballot != 5 {
		t.Fatalf("entry = %+v, want cmd 42 at ballot 5", e)
	}
}

func TestCompactToTruncatesBelowIndex(t *testing.T) {
	a := NewAcceptor(0)
	a.Promise(1)
	for slot := 0; slot < 8; slot++ {
		a.Accept(1, slot, uint64(100+slot))
	}
	if !a.CompactTo(Snapshot{Index: 5, State: []byte("s5")}) {
		t.Fatal("first compaction rejected")
	}
	if a.FirstSlot() != 5 || a.Len() != 3 {
		t.Fatalf("FirstSlot = %d Len = %d, want 5, 3", a.FirstSlot(), a.Len())
	}
	if _, ok := a.Accepted(4); ok {
		t.Fatal("entry below the snapshot index survived compaction")
	}
	if e, ok := a.Accepted(5); !ok || e.Cmd != 105 {
		t.Fatalf("retained suffix entry = %+v, %v", e, ok)
	}
	if got := a.Snapshot(); got.Index != 5 || string(got.State) != "s5" {
		t.Fatalf("Snapshot() = %+v", got)
	}
}

func TestCompactToOnlyMovesForward(t *testing.T) {
	// A delayed or duplicated install below the current snapshot index
	// must not resurrect truncated state or regress the index.
	a := NewAcceptor(0)
	a.Promise(1)
	a.Accept(1, 0, 10)
	a.CompactTo(Snapshot{Index: 1, State: []byte("new")})
	if a.CompactTo(Snapshot{Index: 1, State: []byte("dup")}) {
		t.Fatal("same-index re-install accepted")
	}
	if a.CompactTo(Snapshot{Index: 0, State: []byte("old")}) {
		t.Fatal("regressing install accepted")
	}
	if got := a.Snapshot(); got.Index != 1 || string(got.State) != "new" {
		t.Fatalf("Snapshot() = %+v after stale installs", got)
	}
}

func TestPromiseNextRespectsSnapshotIndex(t *testing.T) {
	// After compaction the accepted map may be empty, but the truncated
	// prefix was chosen: a new master must not reuse those slots.
	a := NewAcceptor(0)
	a.Promise(1)
	for slot := 0; slot < 4; slot++ {
		a.Accept(1, slot, uint64(slot))
	}
	a.CompactTo(Snapshot{Index: 4})
	if a.Len() != 0 {
		t.Fatalf("Len = %d after full compaction, want 0", a.Len())
	}
	ok, next := a.Promise(2)
	if !ok || next != 4 {
		t.Fatalf("Promise = %v, next %d; want true, 4 (the snapshot index)", ok, next)
	}
	if a.NextSlot() != 4 {
		t.Fatalf("NextSlot = %d, want 4", a.NextSlot())
	}
}

func TestAcceptBelowSnapshotAcknowledged(t *testing.T) {
	// A retrying master's Accept at a compacted slot is acknowledged (the
	// command is in the snapshot) without resurrecting a log entry, and
	// ballot fencing still applies first.
	a := NewAcceptor(0)
	a.Promise(3)
	a.CompactTo(Snapshot{Index: 2})
	if a.Accept(1, 0, 9) {
		t.Fatal("stale-ballot accept below the snapshot succeeded")
	}
	if !a.Accept(3, 1, 9) {
		t.Fatal("current-ballot accept below the snapshot rejected")
	}
	if _, ok := a.Accepted(1); ok {
		t.Fatal("compacted slot grew a log entry back")
	}
	if a.Len() != 0 {
		t.Fatalf("Len = %d, want 0", a.Len())
	}
}

func TestPromiseReportsNextFreeSlot(t *testing.T) {
	// A new master must place fresh commands past every slot the old
	// master got accepted here, or it could overwrite committed entries.
	a := NewAcceptor(1)
	a.Promise(1)
	a.Accept(1, 0, 10)
	a.Accept(1, 1, 11)
	a.Accept(1, 4, 14) // gap: slots 2,3 never reached this replica
	ok, next := a.Promise(2)
	if !ok {
		t.Fatal("promise rejected")
	}
	if next != 5 {
		t.Fatalf("next = %d, want 5 (past the highest accepted slot)", next)
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d, want 3", a.Len())
	}
}
