package consensus

import (
	"fmt"

	"dfi/internal/core"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
	"dfi/internal/ycsb"
)

// RunNOPaxos executes the normal-operation protocol of NOPaxos (Li et
// al., OSDI 2016) on top of DFI's ordered unreliable multicast: clients
// multicast requests through a globally-ordered replicate flow (sequence
// numbers from DFI's tuple sequencer), every replica processes them in
// the same global order, and the *clients* collect the response quorum —
// leader plus f replicas — which unburdens the leader relative to
// Multi-Paxos (the paper's explanation for NOPaxos' higher saturation
// point in Figure 15).
//
// Lost multicasts surface as sequence gaps; the gap agreement protocol is
// realized with DFI's gap recovery (NACK-based sender retransmission), so
// all replicas deterministically converge on the same log.
func RunNOPaxos(cfg Config) (Result, error) {
	k, c := buildEnv(cfg)
	reg := registry.New(k)

	clientEPs := make([]core.Endpoint, cfg.Clients)
	for i := range clientEPs {
		clientEPs[i] = core.Endpoint{Node: clientNode(c, cfg, i), Thread: i}
	}
	replicaEPs := make([]core.Endpoint, cfg.Replicas)
	for i := range replicaEPs {
		replicaEPs[i] = core.Endpoint{Node: c.Node(i), Thread: 0}
	}

	oum := core.FlowSpec{
		Name: "nopaxos-oum", Type: core.ReplicateFlow,
		Sources: clientEPs,
		Targets: replicaEPs,
		Schema:  RequestSchema,
		Options: core.Options{
			Optimization:   core.OptimizeLatency,
			Multicast:      true,
			GlobalOrdering: true,
			NotifyGaps:     cfg.GapAgreement,
		},
	}
	resp := core.FlowSpec{
		Name:       "nopaxos-response",
		Sources:    replicaEPs,
		Targets:    clientEPs,
		Schema:     ResponseSchema,
		ShuffleKey: -1,
		Routing: func(t schema.Tuple) int {
			return int(ResponseSchema.Int64(t, 1))
		},
		Options: core.Options{Optimization: core.OptimizeLatency},
	}

	rec := newRecorder(cfg.Requests)
	quorum := cfg.Replicas/2 + 1 // f+1 including the leader

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, oum); err != nil {
			panic(err)
		}
		if err := core.FlowInit(p, reg, c, resp); err != nil {
			panic(err)
		}
	})

	// Replicas: consume the ordered stream, speculatively execute (leader
	// computes results; followers only log), reply directly to clients.
	gaps := 0
	for ri := 0; ri < cfg.Replicas; ri++ {
		ri := ri
		node := replicaEPs[ri].Node
		isLeader := ri == 0
		k.Spawn(fmt.Sprintf("replica-%d", ri), func(p *sim.Proc) {
			in, err := core.TargetOpen(p, reg, "nopaxos-oum", ri)
			if err != nil {
				panic(err)
			}
			out, err := core.SourceOpen(p, reg, "nopaxos-response", ri)
			if err != nil {
				panic(err)
			}
			kv := NewKVStore(node, cfg.ExecCost)
			reply := ResponseSchema.NewTuple()
			for {
				tup, ok := in.Consume(p)
				if !ok {
					if _, gap := in.PendingGap(); gap {
						gaps++
						in.RequestGapRetransmit(p)
						continue
					}
					break
				}
				var result int64
				if isLeader {
					result = kv.Apply(p, ycsb.Op(RequestSchema.Int64(tup, 2)),
						RequestSchema.Int64(tup, 3), RequestSchema.Int64(tup, 4))
				} else {
					node.Compute(p, cfg.ExecCost/2) // log append only
				}
				ResponseSchema.PutUint64(reply, 0, RequestSchema.Uint64(tup, 0))
				ResponseSchema.PutInt64(reply, 1, RequestSchema.Int64(tup, 1))
				ResponseSchema.PutInt64(reply, 2, result)
				if isLeader {
					ResponseSchema.PutInt64(reply, 3, 1)
				} else {
					ResponseSchema.PutInt64(reply, 3, 0)
				}
				if err := out.Push(p, reply); err != nil {
					panic(err)
				}
			}
			out.Close(p)
		})
	}

	// Clients: open-loop submitters; receivers assemble quorums.
	perClient := cfg.Requests / cfg.Clients
	gap := cfg.interArrival()
	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		k.Spawn(fmt.Sprintf("client-submit-%d", ci), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "nopaxos-oum", ci)
			if err != nil {
				panic(err)
			}
			gen := ycsb.New(cfg.ReadFraction, cfg.KeySpace, cfg.Seed+int64(ci))
			tup := RequestSchema.NewTuple()
			for i := 0; i < perClient; i++ {
				op, key := gen.Next()
				id := reqKey(ci, i)
				RequestSchema.PutUint64(tup, 0, id)
				RequestSchema.PutInt64(tup, 1, int64(ci))
				RequestSchema.PutInt64(tup, 2, int64(op))
				RequestSchema.PutInt64(tup, 3, int64(key))
				RequestSchema.PutInt64(tup, 4, int64(i))
				rec.sent(id, p.Now())
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
				p.Sleep(gap)
			}
			src.Close(p)
		})
		k.Spawn(fmt.Sprintf("client-recv-%d", ci), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "nopaxos-response", ci)
			if err != nil {
				panic(err)
			}
			votes := make(map[uint64]int, 64)
			leaderSeen := make(map[uint64]bool, 64)
			completed := make(map[uint64]bool, perClient)
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				id := ResponseSchema.Uint64(tup, 0)
				if completed[id] {
					continue
				}
				votes[id]++
				if ResponseSchema.Int64(tup, 3) == 1 {
					leaderSeen[id] = true
				}
				if votes[id] >= quorum && leaderSeen[id] {
					completed[id] = true
					delete(votes, id)
					delete(leaderSeen, id)
					rec.completed(id, p.Now())
				}
			}
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	res := rec.result(cfg.WarmupFraction)
	res.Gaps = gaps
	return res, nil
}
