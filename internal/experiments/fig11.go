package experiments

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/mpi"
	"dfi/internal/sim"
)

// fig11PaperVolume is the per-node table volume Figure 11's runtimes are
// extrapolated to.
const fig11PaperVolume = 2 << 30

// RunFig11 reproduces Figure 11: an 8:8 shuffle executed in a streaming
// manner — DFI pushes tuples continuously, MPI calls Alltoall on
// mini-batches of 8 tuples (one per target on average). MPI's runtime is
// dominated by collective overhead at small tuple sizes and approaches
// DFI as tuples grow.
func RunFig11(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig11",
		Title:   "Pipelined collective shuffle (8:8), 1 thread/node, 2 GiB/node (extrapolated)",
		Columns: []string{"tuple size", "DFI runtime", "DFI bandwidth", "MPI runtime", "MPI bandwidth"},
		Notes:   []string{"paper: MPI_Alltoall on 8-tuple mini-batches is orders of magnitude slower for small tuples"},
	}
	const nodes = 8
	for _, size := range []int{16, 64, 256, 1024, 4096, 16384} {
		// Sample volume: enough mini-batches to reach steady state.
		batches := 1500
		if opt.Quick {
			batches = 300
		}
		volume := int64(size * 8 * batches) // per node
		dfiRT, err := dfiStreamShuffle(opt.Seed, nodes, size, volume, 1)
		if err != nil {
			return nil, err
		}
		mpiRT, err := mpiMiniBatchShuffle(opt.Seed, nodes, size, volume)
		if err != nil {
			return nil, err
		}
		scale := float64(fig11PaperVolume) / float64(volume)
		dfiFull := time.Duration(float64(dfiRT) * scale)
		mpiFull := time.Duration(float64(mpiRT) * scale)
		total := int64(nodes) * fig11PaperVolume
		t.AddRow(sizeLabel(size),
			fmtDur(dfiFull), gibps(bw(total, dfiFull)),
			fmtDur(mpiFull), gibps(bw(total, mpiFull)))
	}
	return []Table{t}, nil
}

// dfiStreamShuffle runs an N:N bandwidth-optimized shuffle where every
// node scans volume bytes and pushes tuples keyed randomly; it returns the
// runtime until the last node finished consuming. stragglerScale < 1
// slows node 0's CPU (Figure 12).
func dfiStreamShuffle(seed int64, nodes, size int, volume int64, stragglerScale float64) (time.Duration, error) {
	k, c, reg := newBWEnv(seed, nodes)
	if stragglerScale < 1 {
		c.Node(0).CPUScale = stragglerScale
	}
	sch := padSchema(size)
	var sources, targets []core.Endpoint
	for n := 0; n < nodes; n++ {
		sources = append(sources, core.Endpoint{Node: c.Node(n)})
		targets = append(targets, core.Endpoint{Node: c.Node(n)})
	}
	spec := core.FlowSpec{
		Name: "stream", Sources: sources, Targets: targets, Schema: sch,
		Options: core.Options{SegmentSize: segFor(size)},
	}
	perNode := int(volume) / sch.TupleSize()
	var end sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		node := sources[si].Node
		k.Spawn(fmt.Sprintf("scan%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "stream", si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			const scanCost = 4 * time.Nanosecond
			for i := 0; i < perNode; i++ {
				sch.PutInt64(tup, 0, rng.Int63())
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
				if i%1024 == 1023 {
					node.Compute(p, 1024*scanCost)
				}
			}
			src.Close(p)
		})
	}
	for ti := range targets {
		ti := ti
		k.Spawn(fmt.Sprintf("sink%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "stream", ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}

// mpiMiniBatchShuffle shuffles volume bytes per node through MPI_Alltoall
// on 8-tuple mini-batches (the paper's streaming-style usage of a
// bulk-synchronous collective).
func mpiMiniBatchShuffle(seed int64, nodes, size int, volume int64) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = 30 * time.Minute
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = false
	c := fabric.NewCluster(k, nodes, fcfg)
	ns := make([]*fabric.Node, nodes)
	for i := range ns {
		ns[i] = c.Node(i)
	}
	w := mpi.NewWorld(c, ns, mpi.DefaultConfig())

	perNode := int(volume) / size
	batches := perNode / 8
	var end sim.Time
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			rng := p.Rand()
			const scanCost = 4 * time.Nanosecond
			for b := 0; b < batches; b++ {
				// Distribute 8 tuples over the ranks by key.
				parts := make([][]byte, nodes)
				for i := range parts {
					parts[i] = []byte{}
				}
				for i := 0; i < 8; i++ {
					d := int(rng.Int63()) % nodes
					parts[d] = append(parts[d], make([]byte, size)...)
				}
				w.Rank(r).Node().Compute(p, 8*scanCost)
				w.Rank(r).Alltoall(p, uint64(b), parts)
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}
