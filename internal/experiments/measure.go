package experiments

import (
	"time"

	"dfi/internal/core"
)

// Exported single-point measurement entry points used by the repository's
// top-level testing.B benchmarks (bench_test.go), one per figure. Each
// returns the headline metric of its figure at one representative
// parameter point.

// MeasureShuffleBandwidth returns the 1:8 shuffle sender bandwidth
// (bytes/s) for the given source-thread count and tuple size (Fig. 7a).
func MeasureShuffleBandwidth(seed int64, threads, tupleSize int, volumePerThread int64) (float64, error) {
	k, c, reg := newBWEnv(seed, 9)
	var sources, targets []core.Endpoint
	for th := 0; th < threads; th++ {
		sources = append(sources, core.Endpoint{Node: c.Node(0), Thread: th})
	}
	for n := 0; n < 8; n++ {
		targets = append(targets, core.Endpoint{Node: c.Node(n + 1)})
	}
	return shuffleSenderBW(seed, c, k, reg, sources, targets, tupleSize, volumePerThread, 32)
}

// MeasureShuffleBandwidthBatched is MeasureShuffleBandwidth with senders
// pushing through PushBatch in batch-tuple chunks. The simulated
// bandwidth matches the per-tuple path; the benchmark pair tracks the
// host-side (wall-clock) cost of the two API shapes.
func MeasureShuffleBandwidthBatched(seed int64, threads, tupleSize int, volumePerThread int64, batch int) (float64, error) {
	k, c, reg := newBWEnv(seed, 9)
	var sources, targets []core.Endpoint
	for th := 0; th < threads; th++ {
		sources = append(sources, core.Endpoint{Node: c.Node(0), Thread: th})
	}
	for n := 0; n < 8; n++ {
		targets = append(targets, core.Endpoint{Node: c.Node(n + 1)})
	}
	return shuffleSenderBWBatch(seed, c, k, reg, sources, targets, tupleSize, volumePerThread, 32, batch)
}

// MeasureShuffleRTT returns the median shuffle round-trip time over n
// target servers (Fig. 7b), and the raw-verb ping-pong baseline.
func MeasureShuffleRTT(seed int64, size, n, iters int) (dfi, raw time.Duration, err error) {
	raw, err = rawVerbPingPong(seed, size, iters)
	if err != nil {
		return 0, 0, err
	}
	dfi, err = shuffleRoundTrip(seed, size, n, iters)
	return dfi, raw, err
}

// MeasureScaleOut returns the aggregated N:N shuffle bandwidth (bytes/s)
// for the given server and per-server thread counts (Fig. 7c).
func MeasureScaleOut(seed int64, servers, threads int, volumePerSource int64, segs int) (float64, error) {
	k, c, reg := newBWEnv(seed, servers)
	var sources, targets []core.Endpoint
	for n := 0; n < servers; n++ {
		for th := 0; th < threads; th++ {
			sources = append(sources, core.Endpoint{Node: c.Node(n), Thread: th})
			targets = append(targets, core.Endpoint{Node: c.Node(n), Thread: th})
		}
	}
	return shuffleSenderBW(seed, c, k, reg, sources, targets, 1024, volumePerSource, segs)
}

// MeasureFlowMemory returns the per-node registered ring memory of an N:N
// shuffle configuration (§6.1.4).
func MeasureFlowMemory(seed int64, servers, threads, segs int) (int64, error) {
	return measureFlowMemory(seed, servers, threads, segs)
}

// MeasureReplicateBandwidth returns the aggregated receiver bandwidth of
// a 1:8 replicate flow (Figs. 8a/8b).
func MeasureReplicateBandwidth(seed int64, threads, tupleSize int, volumePerThread int64, multicast bool) (float64, error) {
	return replicateReceiverBW(seed, threads, 8, tupleSize, volumePerThread, multicast)
}

// MeasureReplicateRTT returns the median time for one replicated request
// to be acknowledged by all n targets (Fig. 8c).
func MeasureReplicateRTT(seed int64, size, n, iters int, multicast bool) (time.Duration, error) {
	return replicateRoundTrip(seed, size, n, iters, multicast)
}

// MeasureCombinerBandwidth returns the aggregated sender bandwidth of an
// 8:1 combiner flow with SUM aggregation (Fig. 9).
func MeasureCombinerBandwidth(seed int64, tupleSize, targetThreads int, volumePerSource int64) (float64, error) {
	return combinerSenderBW(seed, tupleSize, targetThreads, volumePerSource)
}

// MeasureDFIPointToPoint returns the virtual runtime of a threads-wide
// point-to-point transfer over a DFI flow (Figs. 10a/10b).
func MeasureDFIPointToPoint(seed int64, size, threads int, volume int64, latencyOpt bool) (time.Duration, error) {
	mode := core.OptimizeBandwidth
	if latencyOpt {
		mode = core.OptimizeLatency
	}
	return dfiP2PRuntime(seed, size, threads, volume, mode)
}

// MeasureMPIPointToPoint returns the virtual runtime of the MPI
// equivalent (Figs. 10a/10b); multiProcess selects ranks over threads.
func MeasureMPIPointToPoint(seed int64, size, threads int, volume int64, multiProcess bool) (time.Duration, error) {
	return mpiP2PRuntime(seed, size, threads, volume, multiProcess)
}

// MeasureStreamShuffle returns the runtime of the 8:8 streaming DFI
// shuffle (Figs. 11/12); stragglerScale < 1 slows node 0.
func MeasureStreamShuffle(seed int64, size int, volumePerNode int64, stragglerScale float64) (time.Duration, error) {
	return dfiStreamShuffle(seed, 8, size, volumePerNode, stragglerScale)
}

// MeasureMiniBatchAlltoall returns the runtime of the MPI mini-batch
// collective shuffle (Fig. 11).
func MeasureMiniBatchAlltoall(seed int64, size int, volumePerNode int64) (time.Duration, error) {
	return mpiMiniBatchShuffle(seed, 8, size, volumePerNode)
}

// MeasureBatchedAlltoall returns the runtime of the MPI batched shuffle
// with an optional straggler (Fig. 12).
func MeasureBatchedAlltoall(seed int64, size int, volumePerNode int64, stragglerScale float64) (time.Duration, error) {
	return mpiBatchedShuffle(seed, 8, size, volumePerNode, stragglerScale)
}

// MeasureSharpCombiner returns the aggregated sender bandwidth (bytes/s)
// of the in-network (SHARP-style) combiner extension.
func MeasureSharpCombiner(seed int64, tupleSize int, volumePerSource int64) (float64, error) {
	return sharpSenderBW(seed, tupleSize, volumePerSource)
}
