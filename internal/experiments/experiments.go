// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated fabric. Each experiment produces one
// or more Tables whose rows mirror the series the paper plots; see
// EXPERIMENTS.md at the repository root for paper-vs-measured values.
//
// All reported times and bandwidths are virtual (deterministic simulator
// time). Workload sizes are scaled down from the paper's testbed; where a
// figure reports absolute runtimes for a fixed input size, the measured
// runtime is linearly extrapolated to the paper's size and both values
// are shown.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks workloads for smoke tests and CI.
	Quick bool
	// Seed for all deterministic randomness.
	Seed int64
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options { return Options{Seed: 1} }

// Table is one rendered result: a titled grid of rows matching a figure's
// series.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
	}
	fmt.Fprintln(w, strings.Join(header, "  "))
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment regenerates one figure or table of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt Options) ([]Table, error)
}

// All lists every experiment in evaluation order.
var All = []Experiment{
	{"fig7a", "Shuffle flow sender bandwidth (1:8), bandwidth-optimized", RunFig7a},
	{"fig7b", "Shuffle flow median round-trip latency vs raw verbs (1:N)", RunFig7b},
	{"fig7c", "Shuffle flow scale-out: aggregated bandwidth (N:N)", RunFig7c},
	{"mem", "§6.1.4 memory consumption of the scale-out configuration", RunMemory},
	{"fig8a", "Replicate flow aggregated receiver bandwidth, naive one-sided (1:8)", RunFig8a},
	{"fig8b", "Replicate flow aggregated receiver bandwidth, multicast (1:8)", RunFig8b},
	{"fig8c", "Replicate flow median latency, naive vs multicast (1:N)", RunFig8c},
	{"fig9", "Combiner flow (8:1) with SUM aggregation: sender bandwidth", RunFig9},
	{"fig10a", "MPI vs DFI point-to-point runtime, single-threaded (16 GiB)", RunFig10a},
	{"fig10b", "MPI vs DFI point-to-point runtime, multi-threaded (64 B tuples)", RunFig10b},
	{"fig11", "MPI_Alltoall vs DFI shuffle, pipelined mini-batches (8:8)", RunFig11},
	{"fig12", "Collective shuffle with a straggler (8:8)", RunFig12},
	{"fig13", "Distributed radix join: DFI vs MPI (phase breakdown)", RunFig13},
	{"fig14", "Join adaptability: radix vs fragment-and-replicate", RunFig14},
	{"fig15", "Consensus: DFI Multi-Paxos and NOPaxos vs DARE", RunFig15},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted as listed.
func IDs() []string {
	ids := make([]string, len(All))
	for i, e := range All {
		ids[i] = e.ID
	}
	return ids
}

// gibps formats a bytes-per-second value in GiB/s.
func gibps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GiB/s", bytesPerSec/(1<<30))
}

// bw computes bytes/duration as bytes per second.
func bw(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds()
}

// sizeLabel formats a tuple size.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// median returns the middle element of a duration sample.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// fmtDur renders a duration with three significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
