package experiments

import (
	"fmt"

	"dfi/internal/consensus"
)

// RunFig15 reproduces Figure 15: throughput versus median and 95th
// percentile response latency for the replicated key-value store under
// YCSB's read-dominated workload — DFI-based Multi-Paxos and NOPaxos
// against DARE. The DFI systems are swept over offered (open-loop) load;
// DARE, whose clients are closed-loop, is swept over the client count.
func RunFig15(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig15",
		Title:   "Consensus: 5 replicas, YCSB 95/5 reads/writes, 64 B requests",
		Columns: []string{"system", "load point", "throughput", "median", "p95"},
		Notes: []string{
			"paper: both DFI systems outperform DARE in throughput and latency;",
			"       NOPaxos keeps latencies stable up to ~1.5M req/s (95th pct) because clients collect the quorums",
		},
	}
	base := consensus.DefaultConfig()
	base.Seed = opt.Seed
	base.Requests = 6000
	rates := []float64{200_000, 400_000, 600_000, 800_000, 1_000_000, 1_250_000, 1_500_000, 1_750_000}
	dareClients := []int{1, 2, 4, 6, 9, 12}
	if opt.Quick {
		base.Requests = 1200
		rates = []float64{200_000, 600_000, 1_200_000}
		dareClients = []int{2, 6}
	}

	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		res, err := consensus.RunMultiPaxos(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig15 multipaxos rate=%.0f: %w", rate, err)
		}
		t.AddRow("DFI Multi-Paxos", fmt.Sprintf("offered %.0fk/s", rate/1000),
			fmt.Sprintf("%.0fk req/s", res.Throughput/1000), fmtDur(res.Median), fmtDur(res.P95))
	}
	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		res, err := consensus.RunNOPaxos(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig15 nopaxos rate=%.0f: %w", rate, err)
		}
		t.AddRow("DFI NOPaxos", fmt.Sprintf("offered %.0fk/s", rate/1000),
			fmt.Sprintf("%.0fk req/s", res.Throughput/1000), fmtDur(res.Median), fmtDur(res.P95))
	}
	for _, clients := range dareClients {
		cfg := base
		cfg.Clients = clients
		cfg.Requests = base.Requests / 6 * clients
		if cfg.Requests < clients*100 {
			cfg.Requests = clients * 100
		}
		res, err := consensus.RunDARE(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig15 dare clients=%d: %w", clients, err)
		}
		t.AddRow("DARE", fmt.Sprintf("%d clients (closed loop)", clients),
			fmt.Sprintf("%.0fk req/s", res.Throughput/1000), fmtDur(res.Median), fmtDur(res.P95))
	}
	return []Table{t}, nil
}
