package experiments

import (
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2s"},
		{1500 * time.Millisecond, "1.5s"},
		{250 * time.Millisecond, "250ms"},
		{3 * time.Microsecond, "3µs"},
		{500 * time.Nanosecond, "500ns"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	if sizeLabel(64) != "64 B" || sizeLabel(16<<10) != "16 KiB" || sizeLabel(2<<20) != "2 MiB" {
		t.Fatalf("sizeLabel: %q %q %q", sizeLabel(64), sizeLabel(16<<10), sizeLabel(2<<20))
	}
}

func TestMedian(t *testing.T) {
	ds := []time.Duration{5, 1, 3}
	if median(ds) != 3 {
		t.Fatalf("median = %v", median(ds))
	}
	if median(nil) != 0 {
		t.Fatal("median(nil) != 0")
	}
	// Input must not be reordered.
	if ds[0] != 5 {
		t.Fatal("median mutated its input")
	}
}

func TestBw(t *testing.T) {
	if bw(1<<30, time.Second) != float64(1<<30) {
		t.Fatalf("bw = %v", bw(1<<30, time.Second))
	}
	if bw(100, 0) != 0 {
		t.Fatal("bw with zero duration should be 0")
	}
}

func TestGibps(t *testing.T) {
	if gibps(float64(1<<30)) != "1.00 GiB/s" {
		t.Fatalf("gibps = %q", gibps(float64(1<<30)))
	}
}

func TestPadSchemaSizes(t *testing.T) {
	for _, size := range []int{16, 64, 256, 1024, 16384} {
		if got := padSchema(size).TupleSize(); got != size {
			t.Fatalf("padSchema(%d).TupleSize() = %d", size, got)
		}
	}
	if padSchema(8).TupleSize() != 16 {
		t.Fatal("sub-minimum size not clamped")
	}
}

func TestSegFor(t *testing.T) {
	if segFor(64) != 8<<10 || segFor(16<<10) != 16<<10 {
		t.Fatalf("segFor: %d %d", segFor(64), segFor(16<<10))
	}
}
