package experiments

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// padSchema returns a tuple schema of exactly size bytes: an 8-byte key
// followed by padding.
func padSchema(size int) *schema.Schema {
	if size < 16 {
		size = 16
	}
	return schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(size - 8)},
	)
}

// segFor returns a bandwidth-mode segment size that can hold at least one
// tuple of the given size (the 8 KiB default otherwise).
func segFor(tupleSize int) int {
	if tupleSize > 8<<10 {
		return tupleSize
	}
	return 8 << 10
}

// newBWEnv builds a kernel+cluster tuned for bandwidth sweeps: payload
// copying off (timing only), generous guards.
func newBWEnv(seed int64, nodes int) (*sim.Kernel, *fabric.Cluster, *registry.Registry) {
	k := sim.New(seed)
	k.Deadline = 10 * time.Minute
	cfg := fabric.DefaultConfig()
	cfg.CopyPayload = false
	c := fabric.NewCluster(k, nodes, cfg)
	return k, c, registry.New(k)
}

// shuffleSenderBW measures the aggregate sender bandwidth of a shuffle
// flow with the given sources/targets pushing volumePerSource bytes each.
func shuffleSenderBW(seed int64, c *fabric.Cluster, k *sim.Kernel, reg *registry.Registry,
	sources, targets []core.Endpoint, tupleSize int, volumePerSource int64, segs int) (float64, error) {
	return shuffleSenderBWBatch(seed, c, k, reg, sources, targets, tupleSize, volumePerSource, segs, 1)
}

// shuffleSenderBWBatch is shuffleSenderBW with the sender loop pushing
// batch tuples per PushBatch call (batch <= 1 is the per-tuple Push
// path). The generated key stream is identical either way, so the two
// paths move the same bytes to the same rings.
func shuffleSenderBWBatch(seed int64, c *fabric.Cluster, k *sim.Kernel, reg *registry.Registry,
	sources, targets []core.Endpoint, tupleSize int, volumePerSource int64, segs, batch int) (float64, error) {

	sch := padSchema(tupleSize)
	spec := core.FlowSpec{
		Name:    fmt.Sprintf("bw-%d-%d", tupleSize, seed),
		Sources: sources,
		Targets: targets,
		Schema:  sch,
		Options: core.Options{SegmentsPerRing: segs},
	}
	perSource := int(volumePerSource) / sch.TupleSize()
	var drainEnd sim.Time

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, spec.Name, si)
			if err != nil {
				panic(err)
			}
			rng := p.Rand()
			if batch <= 1 {
				tup := sch.NewTuple()
				for i := 0; i < perSource; i++ {
					sch.PutInt64(tup, 0, rng.Int63())
					if err := src.Push(p, tup); err != nil {
						panic(err)
					}
				}
			} else {
				ts := sch.TupleSize()
				buf := make([]byte, batch*ts)
				tuples := make([]schema.Tuple, batch)
				for i := range tuples {
					tuples[i] = schema.Tuple(buf[i*ts : (i+1)*ts])
				}
				for pushed := 0; pushed < perSource; {
					n := batch
					if n > perSource-pushed {
						n = perSource - pushed
					}
					for i := 0; i < n; i++ {
						sch.PutInt64(tuples[i], 0, rng.Int63())
					}
					if err := src.PushBatch(p, tuples[:n]); err != nil {
						panic(err)
					}
					pushed += n
				}
			}
			src.Close(p)
		})
	}
	for ti := range targets {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, spec.Name, ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			// Steady-state bandwidth is measured once all pushed data has
			// actually crossed the wire (buffered segments excluded).
			if p.Now() > drainEnd {
				drainEnd = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	total := int64(len(sources)) * int64(perSource) * int64(sch.TupleSize())
	return bw(total, drainEnd), nil
}

// RunFig7a reproduces Figure 7a: sender bandwidth of a bandwidth-optimized
// 1:8 shuffle flow over tuple sizes × source threads.
func RunFig7a(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig7a",
		Title:   "Shuffle flow sender bandwidth (1:8), 8 KiB segments",
		Columns: []string{"tuple size", "1 thread", "2 threads", "4 threads"},
		Notes:   []string{"link speed 100 Gbps = 11.64 GiB/s; paper: ≥2 threads saturate the link for tuples >128 B"},
	}
	volume := int64(32 << 20)
	if opt.Quick {
		volume = 4 << 20
	}
	for _, size := range []int{64, 256, 1024} {
		row := []string{sizeLabel(size)}
		for _, threads := range []int{1, 2, 4} {
			k, c, reg := newBWEnv(opt.Seed, 9)
			var sources, targets []core.Endpoint
			for th := 0; th < threads; th++ {
				sources = append(sources, core.Endpoint{Node: c.Node(0), Thread: th})
			}
			for n := 0; n < 8; n++ {
				targets = append(targets, core.Endpoint{Node: c.Node(n + 1)})
			}
			v, err := shuffleSenderBW(opt.Seed, c, k, reg, sources, targets, size, volume/int64(threads), 32)
			if err != nil {
				return nil, fmt.Errorf("fig7a size=%d threads=%d: %w", size, threads, err)
			}
			row = append(row, gibps(v))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// RunFig7b reproduces Figure 7b: median round-trip latency of
// latency-optimized shuffle flows vs a raw-verb ping-pong (the
// ib_write_lat stand-in), for 1, 4 and 8 target servers.
func RunFig7b(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig7b",
		Title:   "Median round-trip latency, latency-optimized shuffle flows",
		Columns: []string{"tuple size", "ib_write_lat (N=1)", "DFI N=1", "DFI N=4", "DFI N=8"},
	}
	iters := 200
	if opt.Quick {
		iters = 40
	}
	sizes := []int{16, 64, 256, 1024, 4096, 16384}
	for _, size := range sizes {
		row := []string{sizeLabel(size)}
		raw, err := rawVerbPingPong(opt.Seed, size, iters)
		if err != nil {
			return nil, err
		}
		row = append(row, fmtDur(raw))
		for _, n := range []int{1, 4, 8} {
			m, err := shuffleRoundTrip(opt.Seed, size, n, iters)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// rawVerbPingPong measures the raw one-sided WRITE round trip the way
// perftest's ib_write_lat does: two nodes write size-byte messages into
// each other's registered memory and poll for the trailing byte flip.
func rawVerbPingPong(seed int64, size, iters int) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = time.Minute
	cfg := fabric.DefaultConfig()
	c := fabric.NewCluster(k, 2, cfg)
	qab, qba := c.CreateQPPair(c.Node(0), c.Node(1))
	mrA := c.RegisterMemory(c.Node(0), size)
	mrB := c.RegisterMemory(c.Node(1), size)
	msg := make([]byte, size)
	var rtts []time.Duration

	k.Spawn("pinger", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			start := p.Now()
			msg[size-1] = byte(i + 1)
			qab.Write(p, msg, fabric.Addr{MR: mrB}, fabric.WriteOptions{CommitTail: 1})
			for mrA.Bytes()[size-1] != byte(i+1) {
				mrA.WaitChange(p, 10*time.Microsecond)
			}
			rtts = append(rtts, p.Now()-start)
		}
	})
	k.Spawn("ponger", func(p *sim.Proc) {
		reply := make([]byte, size)
		for i := 0; i < iters; i++ {
			for mrB.Bytes()[size-1] != byte(i+1) {
				mrB.WaitChange(p, 10*time.Microsecond)
			}
			reply[size-1] = byte(i + 1)
			qba.Write(p, reply, fabric.Addr{MR: mrA}, fabric.WriteOptions{CommitTail: 1})
		}
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return median(rtts), nil
}

// shuffleRoundTrip measures request/response RTT through two
// latency-optimized shuffle flows, shuffling requests across n servers.
func shuffleRoundTrip(seed int64, size, n, iters int) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = time.Minute
	cfg := fabric.DefaultConfig()
	c := fabric.NewCluster(k, n+1, cfg)
	reg := registry.New(k)
	sch := padSchema(size)

	servers := make([]core.Endpoint, n)
	for i := range servers {
		servers[i] = core.Endpoint{Node: c.Node(i + 1)}
	}
	client := []core.Endpoint{{Node: c.Node(0)}}
	lat := core.Options{Optimization: core.OptimizeLatency}
	ping := core.FlowSpec{Name: "ping", Sources: client, Targets: servers, Schema: sch, Options: lat}
	pong := core.FlowSpec{Name: "pong", Sources: servers, Targets: client, Schema: sch, Options: lat}

	var rtts []time.Duration
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, ping); err != nil {
			panic(err)
		}
		if err := core.FlowInit(p, reg, c, pong); err != nil {
			panic(err)
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "ping", 0)
		if err != nil {
			panic(err)
		}
		tgt, err := core.TargetOpen(p, reg, "pong", 0)
		if err != nil {
			panic(err)
		}
		tup := sch.NewTuple()
		for i := 0; i < iters; i++ {
			start := p.Now()
			if err := src.PushTo(p, tup, i%n); err != nil {
				panic(err)
			}
			if _, ok := tgt.Consume(p); !ok {
				panic("pong flow ended early")
			}
			rtts = append(rtts, p.Now()-start)
		}
		src.Close(p)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
	})
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("server%d", i), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "ping", i)
			if err != nil {
				panic(err)
			}
			src, err := core.SourceOpen(p, reg, "pong", i)
			if err != nil {
				panic(err)
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return median(rtts), nil
}

// RunFig7c reproduces Figure 7c: aggregated sender bandwidth scaling out
// from 2 to 8 servers with 4 and 14 source/target threads per server.
func RunFig7c(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig7c",
		Title:   "Scale-out: aggregated sender bandwidth (N:N shuffle)",
		Columns: []string{"servers", "4 thr/server", "14 thr/server"},
		Notes: []string{
			"paper: linear scaling with the link speed of each added node",
			"14-thread series uses 8-segment rings to bound host memory (−8% per §6.1.4)",
		},
	}
	volume := int64(8 << 20)
	serversList := []int{2, 4, 6, 8}
	if opt.Quick {
		volume = 1 << 20
		serversList = []int{2, 4}
	}
	for _, servers := range serversList {
		row := []string{fmt.Sprintf("%d", servers)}
		for _, threads := range []int{4, 14} {
			segs := 32
			if threads == 14 {
				segs = 8
			}
			k, c, reg := newBWEnv(opt.Seed, servers)
			var sources, targets []core.Endpoint
			for n := 0; n < servers; n++ {
				for th := 0; th < threads; th++ {
					sources = append(sources, core.Endpoint{Node: c.Node(n), Thread: th})
					targets = append(targets, core.Endpoint{Node: c.Node(n), Thread: th})
				}
			}
			v, err := shuffleSenderBW(opt.Seed, c, k, reg, sources, targets, 1024, volume, segs)
			if err != nil {
				return nil, fmt.Errorf("fig7c servers=%d threads=%d: %w", servers, threads, err)
			}
			row = append(row, gibps(v))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// RunMemory reproduces the §6.1.4 memory-consumption discussion: the
// registered bytes per node of the scale-out configuration, and the
// segment-count ablation (32 → 16 → 8 segments per ring).
func RunMemory(opt Options) ([]Table, error) {
	mem := Table{
		ID:      "mem",
		Title:   "Registered ring-buffer memory per node (N:N shuffle, 32 × 8 KiB segments)",
		Columns: []string{"configuration", "per-node", "paper"},
	}
	type cfg struct {
		servers, threads, segs int
		paper                  string
		scaleTo32              bool
	}
	cases := []cfg{
		{2, 4, 32, "16 MiB", false},
		{8, 4, 32, "64 MiB", false},
		{8, 14, 8, "785.5 MiB", true},
	}
	for _, cs := range cases {
		perNode, err := measureFlowMemory(opt.Seed, cs.servers, cs.threads, cs.segs)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d servers × %d threads", cs.servers, cs.threads)
		val := float64(perNode)
		if cs.scaleTo32 {
			// Measured with 8-segment rings to bound host memory; ring
			// memory is linear in the segment count (verified on the
			// smaller configurations), so scale to the paper's 32.
			val *= 4
			label += " (8-seg measured ×4)"
		}
		mem.AddRow(label, fmt.Sprintf("%.1f MiB", val/(1<<20)), cs.paper)
	}

	abl := Table{
		ID:      "mem-ablation",
		Title:   "Segment-count ablation: bandwidth vs ring size (8 servers × 4 threads)",
		Columns: []string{"segments/ring", "aggregated BW", "relative"},
		Notes:   []string{"paper: 16 segments −2.7%, 8 segments −8%"},
	}
	volume := int64(8 << 20)
	if opt.Quick {
		volume = 1 << 20
	}
	var base float64
	for _, segs := range []int{32, 16, 8} {
		k, c, reg := newBWEnv(opt.Seed, 8)
		var sources, targets []core.Endpoint
		for n := 0; n < 8; n++ {
			for th := 0; th < 4; th++ {
				sources = append(sources, core.Endpoint{Node: c.Node(n), Thread: th})
				targets = append(targets, core.Endpoint{Node: c.Node(n), Thread: th})
			}
		}
		v, err := shuffleSenderBW(opt.Seed, c, k, reg, sources, targets, 1024, volume, segs)
		if err != nil {
			return nil, err
		}
		if segs == 32 {
			base = v
		}
		abl.AddRow(fmt.Sprintf("%d", segs), gibps(v), fmt.Sprintf("%+.1f%%", (v/base-1)*100))
	}
	return []Table{mem, abl}, nil
}

// measureFlowMemory opens an N:N shuffle flow and reports the maximum
// per-node registered memory once every endpoint has allocated.
func measureFlowMemory(seed int64, servers, threads, segs int) (int64, error) {
	k, c, reg := newBWEnv(seed, servers)
	var sources, targets []core.Endpoint
	for n := 0; n < servers; n++ {
		for th := 0; th < threads; th++ {
			sources = append(sources, core.Endpoint{Node: c.Node(n), Thread: th})
			targets = append(targets, core.Endpoint{Node: c.Node(n), Thread: th})
		}
	}
	spec := core.FlowSpec{
		Name: "memprobe", Sources: sources, Targets: targets,
		Schema:  padSchema(64),
		Options: core.Options{SegmentsPerRing: segs},
	}
	var perNode int64
	opened := sim.NewBarrier(k, len(sources))
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for ti := range targets {
		ti := ti
		k.Spawn("tgt", func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, spec.Name, ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, ok := tgt.Consume(p); !ok {
					return
				}
			}
		})
	}
	for si := range sources {
		si := si
		k.Spawn("src", func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, spec.Name, si)
			if err != nil {
				panic(err)
			}
			opened.Await(p)
			if si == 0 {
				for n := 0; n < servers; n++ {
					if b := c.Node(n).RegisteredBytes(); b > perNode {
						perNode = b
					}
				}
			}
			src.Close(p)
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return perNode, nil
}
