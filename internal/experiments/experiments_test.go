package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every figure/table regenerator at
// reduced scale and sanity-checks the outputs.
func TestAllExperimentsQuick(t *testing.T) {
	opt := Options{Quick: true, Seed: 1}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tabs, err := e.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tabs) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tabs {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				for _, r := range tb.Rows {
					if len(r) != len(tb.Columns) {
						t.Errorf("table %s: row %v has %d cells, want %d", tb.ID, r, len(r), len(tb.Columns))
					}
				}
				if testing.Verbose() {
					tb.Fprint(os.Stderr)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig13"); !ok {
		t.Error("fig13 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id found")
	}
	if len(IDs()) != len(All) {
		t.Error("IDs() length mismatch")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{ID: "x", Title: "T", Columns: []string{"a", "bbbb"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: T ==", "a", "bbbb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentDeterminism: the same experiment with the same seed must
// produce byte-identical tables (the DES guarantee, end to end).
func TestExperimentDeterminism(t *testing.T) {
	opt := Options{Quick: true, Seed: 9}
	render := func() string {
		tabs, err := RunFig7a(opt)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range tabs {
			tb.Fprint(&sb)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("nondeterministic output:\n%s\nvs\n%s", a, b)
	}
}
