package experiments

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/mpi"
	"dfi/internal/sim"
)

// paperTableBytes is the fixed transfer the paper's Figure 10 reports:
// a 16 GiB table. Runs measure a smaller sample and extrapolate linearly
// (per-byte cost is constant per tuple size).
const paperTableBytes = 16 << 30

// RunFig10a reproduces Figure 10a: runtime for transferring a 16 GiB
// table between two nodes, single-threaded, per tuple size — MPI
// Send/Recv against DFI's bandwidth- and latency-optimized flows.
func RunFig10a(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig10a",
		Title:   "Point-to-point runtime, single-threaded, 16 GiB table (extrapolated)",
		Columns: []string{"tuple size", "DFI bandwidth-opt", "DFI latency-opt", "MPI Send/Recv"},
		Notes: []string{
			"paper: MPI needs ~300s at 16 B (no batching); DFI bandwidth-opt stays near wire speed",
		},
	}
	msgs := 60_000
	bwVolume := int64(64 << 20)
	if opt.Quick {
		msgs = 8_000
		bwVolume = 8 << 20
	}
	for _, size := range []int{16, 64, 256, 1024, 4096, 16384} {
		dfiBW, err := dfiP2PRuntime(opt.Seed, size, 1, bwVolume, core.OptimizeBandwidth)
		if err != nil {
			return nil, err
		}
		latVol := int64(size * msgs)
		dfiLat, err := dfiP2PRuntime(opt.Seed, size, 1, latVol, core.OptimizeLatency)
		if err != nil {
			return nil, err
		}
		mpiRT, err := mpiP2PRuntime(opt.Seed, size, 1, int64(size*msgs), false)
		if err != nil {
			return nil, err
		}
		scaleBW := float64(paperTableBytes) / float64(bwVolume)
		scaleLat := float64(paperTableBytes) / float64(latVol)
		t.AddRow(sizeLabel(size),
			fmtDur(time.Duration(float64(dfiBW)*scaleBW)),
			fmtDur(time.Duration(float64(dfiLat)*scaleLat)),
			fmtDur(time.Duration(float64(mpiRT)*scaleLat)),
		)
	}
	return []Table{t}, nil
}

// RunFig10b reproduces Figure 10b: the same transfer with 64 B tuples and
// 1–8 sender threads. Multi-threaded MPI collapses on its central latch;
// multi-process MPI scales but below DFI.
func RunFig10b(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig10b",
		Title:   "Point-to-point runtime, multi-threaded, 64 B tuples, 16 GiB table (extrapolated)",
		Columns: []string{"threads", "DFI bandwidth-opt", "DFI latency-opt", "MPI multi-threaded", "MPI multi-process"},
		Notes: []string{
			"paper: MPI THREAD_MULTIPLE gets slower with more threads; multi-process scales but trails DFI",
		},
	}
	const size = 64
	msgs := 48_000
	bwVolume := int64(24 << 20)
	if opt.Quick {
		msgs = 8_000
		bwVolume = 4 << 20
	}
	for _, threads := range []int{1, 2, 4, 8} {
		dfiBW, err := dfiP2PRuntime(opt.Seed, size, threads, bwVolume, core.OptimizeBandwidth)
		if err != nil {
			return nil, err
		}
		latVol := int64(size * msgs)
		dfiLat, err := dfiP2PRuntime(opt.Seed, size, threads, latVol, core.OptimizeLatency)
		if err != nil {
			return nil, err
		}
		mpiMT, err := mpiP2PRuntime(opt.Seed, size, threads, latVol, false)
		if err != nil {
			return nil, err
		}
		mpiMP, err := mpiP2PRuntime(opt.Seed, size, threads, latVol, true)
		if err != nil {
			return nil, err
		}
		scaleBW := float64(paperTableBytes) / float64(bwVolume)
		scaleLat := float64(paperTableBytes) / float64(latVol)
		t.AddRow(fmt.Sprintf("%d", threads),
			fmtDur(time.Duration(float64(dfiBW)*scaleBW)),
			fmtDur(time.Duration(float64(dfiLat)*scaleLat)),
			fmtDur(time.Duration(float64(mpiMT)*scaleLat)),
			fmtDur(time.Duration(float64(mpiMP)*scaleLat)),
		)
	}
	return []Table{t}, nil
}

// dfiP2PRuntime transfers volume bytes of size-byte tuples from node 0 to
// node 1 over a shuffle flow with the given thread count, returning the
// virtual runtime until the last tuple was consumed.
func dfiP2PRuntime(seed int64, size, threads int, volume int64, mode core.Optimization) (time.Duration, error) {
	k, c, reg := newBWEnv(seed, 2)
	sch := padSchema(size)
	var sources, targets []core.Endpoint
	for th := 0; th < threads; th++ {
		sources = append(sources, core.Endpoint{Node: c.Node(0), Thread: th})
		targets = append(targets, core.Endpoint{Node: c.Node(1), Thread: th})
	}
	spec := core.FlowSpec{
		Name: "p2p", Sources: sources, Targets: targets, Schema: sch,
		Options: core.Options{Optimization: mode},
	}
	if mode == core.OptimizeBandwidth {
		spec.Options.SegmentSize = segFor(size)
	}
	perThread := int(volume) / sch.TupleSize() / threads
	var end sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "p2p", si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			for i := 0; i < perThread; i++ {
				if err := src.PushTo(p, tup, si); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	for ti := range targets {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "p2p", ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}

// mpiP2PRuntime transfers volume bytes of size-byte messages from node 0
// to node 1 with MPI Send/Recv. multiProcess=false uses one
// THREAD_MULTIPLE rank per node with `threads` calling threads;
// multiProcess=true uses `threads` single-threaded ranks per node.
func mpiP2PRuntime(seed int64, size, threads int, volume int64, multiProcess bool) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = 10 * time.Minute
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = false
	c := fabric.NewCluster(k, 2, fcfg)

	perThread := int(volume) / size / threads
	var end sim.Time
	buf := make([]byte, size)

	if multiProcess {
		// `threads` ranks on each node, paired sender→receiver.
		nodes := make([]*fabric.Node, 0, 2*threads)
		for i := 0; i < threads; i++ {
			nodes = append(nodes, c.Node(0))
		}
		for i := 0; i < threads; i++ {
			nodes = append(nodes, c.Node(1))
		}
		w := mpi.NewWorld(c, nodes, mpi.DefaultConfig())
		for i := 0; i < threads; i++ {
			i := i
			k.Spawn(fmt.Sprintf("send%d", i), func(p *sim.Proc) {
				for m := 0; m < perThread; m++ {
					w.Rank(i).Send(p, threads+i, uint64(i), buf)
				}
			})
			k.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
				for m := 0; m < perThread; m++ {
					w.Rank(threads+i).Recv(p, i, uint64(i))
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
	} else {
		w := mpi.NewWorld(c, []*fabric.Node{c.Node(0), c.Node(1)}, mpi.DefaultConfig())
		w.Rank(0).SetThreads(threads)
		w.Rank(1).SetThreads(threads)
		for i := 0; i < threads; i++ {
			i := i
			k.Spawn(fmt.Sprintf("send%d", i), func(p *sim.Proc) {
				for m := 0; m < perThread; m++ {
					w.Rank(0).Send(p, 1, uint64(i), buf)
				}
			})
			k.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
				for m := 0; m < perThread; m++ {
					w.Rank(1).Recv(p, 0, uint64(i))
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}
