package experiments

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/sim"
)

// replicateReceiverBW measures the aggregated receiver bandwidth of a 1:8
// replicate flow (naive one-sided or multicast) with the given number of
// source threads.
func replicateReceiverBW(seed int64, threads, targetsN, tupleSize int, volumePerThread int64, multicast bool) (float64, error) {
	k, c, reg := newBWEnv(seed, targetsN+1)
	sch := padSchema(tupleSize)
	var sources, targets []core.Endpoint
	for th := 0; th < threads; th++ {
		sources = append(sources, core.Endpoint{Node: c.Node(0), Thread: th})
	}
	for n := 0; n < targetsN; n++ {
		targets = append(targets, core.Endpoint{Node: c.Node(n + 1)})
	}
	spec := core.FlowSpec{
		Name: "rep-bw", Type: core.ReplicateFlow,
		Sources: sources, Targets: targets, Schema: sch,
		Options: core.Options{Multicast: multicast},
	}
	perSource := int(volumePerThread) / sch.TupleSize()
	var finish sim.Time

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "rep-bw", si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			for i := 0; i < perSource; i++ {
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	for ti := range targets {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "rep-bw", ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	delivered := int64(threads) * int64(perSource) * int64(sch.TupleSize()) * int64(targetsN)
	return bw(delivered, finish), nil
}

// RunFig8a reproduces Figure 8a: naive one-sided replication (1:8) is
// capped by the sender's outgoing link.
func RunFig8a(opt Options) ([]Table, error) {
	return replicateBWTable("fig8a",
		"Replicate flow aggregated receiver bandwidth, naive one-sided (1:8)",
		[]string{"paper: limited by the sender's 11.64 GiB/s link"},
		false, opt)
}

// RunFig8b reproduces Figure 8b: with switch multicast the aggregate
// receiver bandwidth exceeds the sender link several times over, and
// extra source threads do not help.
func RunFig8b(opt Options) ([]Table, error) {
	return replicateBWTable("fig8b",
		"Replicate flow aggregated receiver bandwidth, multicast (1:8)",
		[]string{"paper: up to 64 GiB/s — far beyond the 11.64 GiB/s sender link; more threads do not help"},
		true, opt)
}

func replicateBWTable(id, title string, notes []string, multicast bool, opt Options) ([]Table, error) {
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"tuple size", "1 thread", "2 threads", "4 threads"},
		Notes:   notes,
	}
	volume := int64(16 << 20)
	if opt.Quick {
		volume = 2 << 20
	}
	for _, size := range []int{64, 256, 1024} {
		row := []string{sizeLabel(size)}
		for _, threads := range []int{1, 2, 4} {
			v, err := replicateReceiverBW(opt.Seed, threads, 8, size, volume/int64(threads), multicast)
			if err != nil {
				return nil, fmt.Errorf("%s size=%d threads=%d: %w", id, size, threads, err)
			}
			row = append(row, gibps(v))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// RunFig8c reproduces Figure 8c: the time for one request replicated to N
// targets to be acknowledged by all of them, naive vs multicast.
func RunFig8c(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig8c",
		Title:   "Replicate flow median latency until all targets replied (1:N)",
		Columns: []string{"tuple size", "naive N=1", "naive N=8", "multicast N=1", "multicast N=8"},
		Notes:   []string{"paper: naive wins at N=1 but degrades with N; multicast stays nearly flat"},
	}
	iters := 150
	if opt.Quick {
		iters = 30
	}
	for _, size := range []int{16, 64, 256, 1024, 4096} {
		row := []string{sizeLabel(size)}
		for _, mc := range []bool{false, true} {
			for _, n := range []int{1, 8} {
				m, err := replicateRoundTrip(opt.Seed, size, n, iters, mc)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(m))
			}
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// replicateRoundTrip measures the median time from replicating one
// request to N targets until replies from all N arrived.
func replicateRoundTrip(seed int64, size, n, iters int, multicast bool) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = time.Minute
	cfg := fabric.DefaultConfig()
	c := fabric.NewCluster(k, n+1, cfg)
	reg := registry.New(k)
	sch := padSchema(size)

	servers := make([]core.Endpoint, n)
	for i := range servers {
		servers[i] = core.Endpoint{Node: c.Node(i + 1)}
	}
	client := []core.Endpoint{{Node: c.Node(0)}}
	req := core.FlowSpec{
		Name: "rep-req", Type: core.ReplicateFlow,
		Sources: client, Targets: servers, Schema: sch,
		Options: core.Options{Optimization: core.OptimizeLatency, Multicast: multicast},
	}
	ack := core.FlowSpec{
		Name: "rep-ack", Sources: servers, Targets: client, Schema: sch,
		Options: core.Options{Optimization: core.OptimizeLatency},
	}
	var rtts []time.Duration
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, req); err != nil {
			panic(err)
		}
		if err := core.FlowInit(p, reg, c, ack); err != nil {
			panic(err)
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "rep-req", 0)
		if err != nil {
			panic(err)
		}
		tgt, err := core.TargetOpen(p, reg, "rep-ack", 0)
		if err != nil {
			panic(err)
		}
		tup := sch.NewTuple()
		for i := 0; i < iters; i++ {
			start := p.Now()
			if err := src.Push(p, tup); err != nil {
				panic(err)
			}
			for got := 0; got < n; got++ {
				if _, ok := tgt.Consume(p); !ok {
					panic("ack flow ended early")
				}
			}
			rtts = append(rtts, p.Now()-start)
		}
		src.Close(p)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
	})
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("server%d", i), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "rep-req", i)
			if err != nil {
				panic(err)
			}
			src, err := core.SourceOpen(p, reg, "rep-ack", i)
			if err != nil {
				panic(err)
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return median(rtts), nil
}

// RunFig9 reproduces Figure 9: a combiner flow (8 sender nodes into one
// target node) with SUM aggregation. With one target thread the
// aggregation CPU limits throughput; with 2–4 threads the target's
// in-going link becomes the cap.
func RunFig9(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig9",
		Title:   "Combiner flow (8:1) with SUM aggregation: aggregated sender bandwidth",
		Columns: []string{"tuple size", "1 target thread", "2 target threads", "4 target threads"},
		Notes:   []string{"paper: 2 and 4 threads are limited by the target's in-going link"},
	}
	volume := int64(8 << 20)
	if opt.Quick {
		volume = 1 << 20
	}
	for _, size := range []int{64, 256, 1024} {
		row := []string{sizeLabel(size)}
		for _, threads := range []int{1, 2, 4} {
			v, err := combinerSenderBW(opt.Seed, size, threads, volume)
			if err != nil {
				return nil, fmt.Errorf("fig9 size=%d threads=%d: %w", size, threads, err)
			}
			row = append(row, gibps(v))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// combinerSenderBW drives 8 sender nodes into a combiner flow with the
// given number of target threads and returns aggregated sender bandwidth.
func combinerSenderBW(seed int64, tupleSize, targetThreads int, volumePerSource int64) (float64, error) {
	k, c, reg := newBWEnv(seed, 9)
	sch := padSchema(tupleSize)
	var sources, targets []core.Endpoint
	for n := 0; n < 8; n++ {
		sources = append(sources, core.Endpoint{Node: c.Node(n)})
	}
	for th := 0; th < targetThreads; th++ {
		targets = append(targets, core.Endpoint{Node: c.Node(8), Thread: th})
	}
	spec := core.FlowSpec{
		Name: "comb-bw", Type: core.CombinerFlow,
		Sources: sources, Targets: targets, Schema: sch,
		Options: core.Options{Aggregation: core.AggSum, GroupCol: 0, ValueCol: 0},
	}
	perSource := int(volumePerSource) / sch.TupleSize()
	var drainEnd sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "comb-bw", si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63n(4096))
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	for ti := range targets {
		ti := ti
		k.Spawn(fmt.Sprintf("comb%d", ti), func(p *sim.Proc) {
			ct, err := core.CombinerTargetOpen(p, reg, "comb-bw", ti)
			if err != nil {
				panic(err)
			}
			ct.Run(p)
			if p.Now() > drainEnd {
				drainEnd = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	total := int64(len(sources)) * int64(perSource) * int64(sch.TupleSize())
	return bw(total, drainEnd), nil
}
