package experiments

import (
	"fmt"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/mpi"
	"dfi/internal/sim"
)

// RunFig12 reproduces Figure 12: an 8:8 collective shuffle of a table of
// T bytes with one straggling node (CPU frequency scaled by s). MPI
// pre-shuffles the whole batch locally, then calls one blocking
// MPI_Alltoall — so everybody waits for the straggler's scan before any
// byte moves. DFI pushes tuples as the scan produces them, overlapping
// the slow scan with the transfer of the fast nodes.
func RunFig12(opt Options) ([]Table, error) {
	t := Table{
		ID:      "fig12",
		Title:   "Collective shuffle with a straggler (8:8), 256 B tuples (extrapolated)",
		Columns: []string{"s (CPU scale)", "table size", "MPI batched", "DFI streaming", "MPI/DFI"},
		Notes: []string{
			"paper: s=1 T=2GiB MPI 1.19s vs DFI 0.71s; s=0.5 T=2GiB 3.36s vs 1.89s;",
			"       s=1 T=8GiB 4.65s vs 3.17s; s=0.5 T=8GiB 12.53s vs 7.57s",
		},
	}
	const size = 256
	const nodes = 8
	sampleScale := 32 // simulate T/32, extrapolate back
	if opt.Quick {
		sampleScale = 128
	}
	for _, tcase := range []struct {
		s float64
		T int64
	}{
		{1.0, 2 << 30}, {0.5, 2 << 30},
		{1.0, 8 << 30}, {0.5, 8 << 30},
	} {
		sample := tcase.T / int64(sampleScale)
		perNode := sample / nodes
		mpiRT, err := mpiBatchedShuffle(opt.Seed, nodes, size, perNode, tcase.s)
		if err != nil {
			return nil, err
		}
		dfiRT, err := dfiStreamShuffle(opt.Seed, nodes, size, perNode, tcase.s)
		if err != nil {
			return nil, err
		}
		mpiFull := time.Duration(float64(mpiRT) * float64(sampleScale))
		dfiFull := time.Duration(float64(dfiRT) * float64(sampleScale))
		t.AddRow(
			fmt.Sprintf("%.1f", tcase.s),
			fmt.Sprintf("%d GiB", tcase.T>>30),
			fmtDur(mpiFull), fmtDur(dfiFull),
			fmt.Sprintf("%.2fx", float64(mpiFull)/float64(dfiFull)),
		)
	}
	return []Table{t}, nil
}

// mpiBatchedShuffle: every node scans and locally pre-shuffles its chunk
// (per-tuple scan+copy cost), then the nodes execute one bulk
// MPI_Alltoall over the complete batch. Node 0 runs at CPU scale s.
func mpiBatchedShuffle(seed int64, nodes, size int, perNode int64, s float64) (time.Duration, error) {
	k := sim.New(seed)
	k.Deadline = 30 * time.Minute
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = false
	c := fabric.NewCluster(k, nodes, fcfg)
	if s < 1 {
		c.Node(0).CPUScale = s
	}
	ns := make([]*fabric.Node, nodes)
	for i := range ns {
		ns[i] = c.Node(i)
	}
	mcfg := mpi.DefaultConfig()
	// Receive buffers are sized to MaxMessage; bound it by the actual
	// alltoall part size.
	mcfg.MaxMessage = int(perNode)/nodes + 64
	w := mpi.NewWorld(c, ns, mcfg)

	tuples := int(perNode) / size
	var end sim.Time
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			node := w.Rank(r).Node()
			// Local pre-shuffle: scan + copy every tuple into per-target
			// buffers (14 ns/tuple, matching the join cost model).
			const preShuffleCost = 14 * time.Nanosecond
			node.Compute(p, time.Duration(tuples)*preShuffleCost)
			parts := make([][]byte, nodes)
			share := int(perNode) / nodes
			for i := range parts {
				parts[i] = make([]byte, share)
			}
			w.Rank(r).Alltoall(p, 1, parts)
			// Receive-side materialization of the shuffled batch.
			const postCost = 4 * time.Nanosecond
			node.Compute(p, time.Duration(tuples)*postCost)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}
