package experiments

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/join"
	"dfi/internal/sim"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's figures: they isolate the contribution of
// individual mechanisms in the flow implementation.

func init() {
	All = append(All,
		Experiment{"abl-ordering", "Ablation: ordering-guarantee overhead of replicate flows", RunAblationOrdering},
		Experiment{"abl-credit", "Ablation: latency-flow credit threshold", RunAblationCredit},
		Experiment{"abl-multicast", "Ablation: multicast vs naive replication latency by fan-out", RunAblationMulticast},
		Experiment{"abl-sharp", "Extension: in-network (SHARP-style) combiner aggregation", RunAblationSharp},
		Experiment{"abl-skew", "Ablation: key skew sensitivity of the distributed joins", RunAblationSkew},
	)
}

// RunAblationOrdering measures what the global-ordering guarantee costs a
// replicate flow: the tuple sequencer adds a fetch-and-add round trip per
// segment and targets must reorder (paper §5.4).
func RunAblationOrdering(opt Options) ([]Table, error) {
	t := Table{
		ID:      "abl-ordering",
		Title:   "Replicate flow (2 sources → 3 targets): unordered vs globally ordered",
		Columns: []string{"variant", "runtime", "per-tuple overhead"},
		Notes:   []string{"the sequencer costs one fetch-and-add round trip per segment (paper §5.4)"},
	}
	n := 4000
	if opt.Quick {
		n = 800
	}
	var base time.Duration
	for _, ordered := range []bool{false, true} {
		d, err := replicateOrderedRuntime(opt.Seed, n, ordered)
		if err != nil {
			return nil, err
		}
		label := "unordered"
		overhead := "-"
		if ordered {
			label = "globally ordered"
			overhead = fmtDur(time.Duration(int64(d-base) / int64(2*n)))
		} else {
			base = d
		}
		t.AddRow(label, fmtDur(d), overhead)
	}
	return []Table{t}, nil
}

func replicateOrderedRuntime(seed int64, perSource int, ordered bool) (time.Duration, error) {
	k, c, reg := newBWEnv(seed, 5)
	sch := padSchema(64)
	spec := core.FlowSpec{
		Name: "abl-ord",
		Type: core.ReplicateFlow,
		Sources: []core.Endpoint{
			{Node: c.Node(0)}, {Node: c.Node(1)},
		},
		Targets: []core.Endpoint{
			{Node: c.Node(2)}, {Node: c.Node(3)}, {Node: c.Node(4)},
		},
		Schema: sch,
		Options: core.Options{
			Optimization:   core.OptimizeLatency,
			Multicast:      true,
			GlobalOrdering: ordered,
		},
	}
	var end sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "abl-ord", si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			for i := 0; i < perSource; i++ {
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	for ti := 0; ti < 3; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "abl-ord", ti)
			if err != nil {
				panic(err)
			}
			for {
				if _, ok := tgt.Consume(p); !ok {
					break
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}

// RunAblationCredit sweeps the latency-flow credit-refresh threshold: too
// low and the source stalls waiting for credit; too high and it wastes
// refresh reads.
func RunAblationCredit(opt Options) ([]Table, error) {
	t := Table{
		ID:      "abl-credit",
		Title:   "Latency-optimized 1:1 flow: credit threshold vs streaming runtime (ring = 32)",
		Columns: []string{"threshold", "runtime", "relative"},
	}
	n := 20000
	if opt.Quick {
		n = 4000
	}
	var base time.Duration
	for _, thr := range []int{1, 4, 8, 16, 24} {
		d, err := creditThresholdRuntime(opt.Seed, n, thr)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = d
		}
		t.AddRow(fmt.Sprintf("%d", thr), fmtDur(d), fmt.Sprintf("%+.1f%%", (float64(d)/float64(base)-1)*100))
	}
	return []Table{t}, nil
}

func creditThresholdRuntime(seed int64, n, threshold int) (time.Duration, error) {
	k, c, reg := newBWEnv(seed, 2)
	sch := padSchema(64)
	spec := core.FlowSpec{
		Name:    "abl-credit",
		Sources: []core.Endpoint{{Node: c.Node(0)}},
		Targets: []core.Endpoint{{Node: c.Node(1)}},
		Schema:  sch,
		Options: core.Options{
			Optimization:    core.OptimizeLatency,
			CreditThreshold: threshold,
		},
	}
	var end sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	k.Spawn("src", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "abl-credit", 0)
		if err != nil {
			panic(err)
		}
		tup := sch.NewTuple()
		for i := 0; i < n; i++ {
			if err := src.Push(p, tup); err != nil {
				panic(err)
			}
		}
		src.Close(p)
	})
	k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := core.TargetOpen(p, reg, "abl-credit", 0)
		if err != nil {
			panic(err)
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return end, nil
}

// RunAblationMulticast contrasts naive one-sided replication with switch
// multicast across fan-outs: the naive variant's reply time grows with
// the fan-out; multicast stays flat.
func RunAblationMulticast(opt Options) ([]Table, error) {
	t := Table{
		ID:      "abl-multicast",
		Title:   "Replicated 64 B request, median time until all targets replied",
		Columns: []string{"fan-out", "naive", "multicast", "multicast advantage"},
	}
	iters := 150
	if opt.Quick {
		iters = 40
	}
	for _, n := range []int{1, 2, 4, 8, 12} {
		naive, err := replicateRoundTrip(opt.Seed, 64, n, iters, false)
		if err != nil {
			return nil, err
		}
		mc, err := replicateRoundTrip(opt.Seed, 64, n, iters, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("1:%d", n), fmtDur(naive), fmtDur(mc),
			fmt.Sprintf("%.2fx", float64(naive)/float64(mc)))
	}
	return []Table{t}, nil
}

// RunAblationSharp quantifies the in-network aggregation extension: the
// end-host combiner is capped at the target's in-going link, while the
// switch-resident reduction engine is bounded only by the senders' links
// (§4.2.3's SHARP discussion, implemented here as an extension).
func RunAblationSharp(opt Options) ([]Table, error) {
	t := Table{
		ID:      "abl-sharp",
		Title:   "Combiner (8:1, SUM, 64 B tuples): end-host vs in-network reduction",
		Columns: []string{"variant", "aggregated sender BW"},
		Notes: []string{
			"extension beyond the paper: §4.2.3 names SHARP-style in-network aggregation as future work",
		},
	}
	volume := int64(8 << 20)
	if opt.Quick {
		volume = 2 << 20
	}
	host, err := combinerSenderBW(opt.Seed, 64, 4, volume)
	if err != nil {
		return nil, err
	}
	sharp, err := sharpSenderBW(opt.Seed, 64, volume)
	if err != nil {
		return nil, err
	}
	t.AddRow("end-host combiner (4 target threads)", gibps(host))
	t.AddRow("in-network reduction engine", gibps(sharp))
	t.Notes = append(t.Notes, fmt.Sprintf("in-network speedup: %.2fx", sharp/host))
	return []Table{t}, nil
}

// RunAblationSkew measures how zipfian foreign-key skew (a hot partition)
// degrades the DFI and MPI radix joins — the skew sensitivity the paper's
// §2.3 attributes to bulk-synchronous shuffles. DFI's streaming shuffle
// degrades too (the hot worker still bottlenecks) but keeps its edge.
func RunAblationSkew(opt Options) ([]Table, error) {
	t := Table{
		ID:      "abl-skew",
		Title:   "Radix join under zipfian key skew (4 nodes × 2 workers)",
		Columns: []string{"skew (zipf s)", "DFI total", "MPI total", "MPI/DFI"},
	}
	cfg := join.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.Nodes, cfg.WorkersPerNode = 4, 2
	cfg.InnerTuples, cfg.OuterTuples = 160_000, 320_000
	if opt.Quick {
		cfg.InnerTuples, cfg.OuterTuples = 40_000, 80_000
	}
	for _, skew := range []float64{0, 1.2, 1.5, 2.0} {
		c := cfg
		c.ZipfSkew = skew
		dfi, err := join.RunDFIRadix(c)
		if err != nil {
			return nil, err
		}
		mpiPT, err := join.RunMPIRadix(c)
		if err != nil {
			return nil, err
		}
		label := "uniform"
		if skew > 0 {
			label = fmt.Sprintf("%.1f", skew)
		}
		t.AddRow(label, fmtDur(dfi.Total), fmtDur(mpiPT.Total),
			fmt.Sprintf("%.2fx", float64(mpiPT.Total)/float64(dfi.Total)))
	}
	return []Table{t}, nil
}

func sharpSenderBW(seed int64, tupleSize int, volumePerSource int64) (float64, error) {
	k, c, reg := newBWEnv(seed, 9)
	sch := padSchema(tupleSize)
	var sources []core.Endpoint
	for n := 0; n < 8; n++ {
		sources = append(sources, core.Endpoint{Node: c.Node(n)})
	}
	target := core.Endpoint{Node: c.Node(8)}
	perSource := int(volumePerSource) / sch.TupleSize()
	var end sim.Time
	var sc *core.SharpCombiner
	k.Spawn("init", func(p *sim.Proc) {
		var err error
		sc, err = core.NewSharpCombiner(p, reg, c, "abl-sharp", sources, target, sch, core.SharpOptions{
			Aggregation: core.AggSum, GroupCol: 0, ValueCol: 0,
		})
		if err != nil {
			panic(err)
		}
	})
	for si := range sources {
		si := si
		k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
			for sc == nil {
				p.Yield()
			}
			src, err := core.SourceOpen(p, reg, sc.IngestFlow(), si)
			if err != nil {
				panic(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63n(4096))
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
			}
			src.Close(p)
		})
	}
	k.Spawn("tgt", func(p *sim.Proc) {
		for sc == nil {
			p.Yield()
		}
		st, err := sc.TargetOpenSharp(p, reg)
		if err != nil {
			panic(err)
		}
		st.Run(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	total := int64(len(sources)) * int64(perSource) * int64(sch.TupleSize())
	return bw(total, end), nil
}
