package experiments

import (
	"fmt"
	"time"

	"dfi/internal/join"
)

// joinCfg returns the Figure 13/14 join configuration (paper inputs
// scaled 1000×: 2.56M ⨝ 2.56M instead of 2.56B ⨝ 2.56B).
func joinCfg(opt Options) join.Config {
	cfg := join.DefaultConfig()
	cfg.Seed = opt.Seed
	if opt.Quick {
		cfg.Nodes = 4
		cfg.WorkersPerNode = 2
		cfg.InnerTuples = 160_000
		cfg.OuterTuples = 160_000
	}
	return cfg
}

// joinRow renders one join variant's phase breakdown.
func joinRow(name string, pt join.PhaseTimes) []string {
	cell := func(d time.Duration) string {
		if d == 0 {
			return "-"
		}
		return fmtDur(d)
	}
	return []string{
		name,
		cell(pt.Histogram),
		cell(pt.NetworkPartition),
		cell(pt.SyncBarrier),
		cell(pt.NetworkReplicate),
		cell(pt.LocalPartition),
		cell(pt.BuildProbe),
		fmtDur(pt.Total),
		fmt.Sprintf("%d", pt.Matches),
	}
}

var joinColumns = []string{
	"variant", "histogram", "net shuffle", "barrier", "net replicate",
	"local part", "build+probe", "total", "matches",
}

// RunFig13 reproduces Figure 13: the distributed radix join on 8 nodes ×
// 8 workers, DFI vs the MPI baseline, with the per-phase breakdown. DFI
// wins by omitting the histogram pass and the post-shuffle barrier and by
// overlapping the shuffle with local processing.
func RunFig13(opt Options) ([]Table, error) {
	cfg := joinCfg(opt)
	t := Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("Distributed radix join, %d nodes × %d workers, %.2gM ⨝ %.2gM tuples", cfg.Nodes, cfg.WorkersPerNode, float64(cfg.InnerTuples)/1e6, float64(cfg.OuterTuples)/1e6),
		Columns: joinColumns,
		Notes: []string{
			"paper (2.56B ⨝ 2.56B): MPI ≈ 2.4s vs DFI ≈ 1.7s — DFI has no histogram/barrier phases",
			"DFI phase columns are per-worker CPU times that overlap with the shuffle; they need not sum to the total",
		},
	}
	mpiPT, err := join.RunMPIRadix(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig13 mpi: %w", err)
	}
	dfiPT, err := join.RunDFIRadix(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig13 dfi: %w", err)
	}
	t.Rows = append(t.Rows, joinRow("MPI radix join", mpiPT), joinRow("DFI radix join", dfiPT))
	t.Notes = append(t.Notes, fmt.Sprintf("speedup: DFI is %.2fx faster", float64(mpiPT.Total)/float64(dfiPT.Total)))
	return []Table{t}, nil
}

// RunFig14 reproduces Figure 14: join adaptability with a 1000× smaller
// inner relation. Swapping the inner-table shuffle flow for a replicate
// flow (fragment-and-replicate join) avoids shuffling the big outer table
// and cuts the runtime further.
func RunFig14(opt Options) ([]Table, error) {
	cfg := joinCfg(opt)
	cfg.InnerTuples = cfg.OuterTuples / 1000
	t := Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("Join adaptability, %.3gk ⨝ %.3gM tuples", float64(cfg.InnerTuples)/1e3, float64(cfg.OuterTuples)/1e6),
		Columns: joinColumns,
		Notes:   []string{"paper: the replicate join reduces the DFI radix join runtime by another ~20%"},
	}
	mpiPT, err := join.RunMPIRadix(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig14 mpi: %w", err)
	}
	dfiPT, err := join.RunDFIRadix(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig14 dfi: %w", err)
	}
	repPT, err := join.RunDFIReplicateJoin(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig14 replicate: %w", err)
	}
	t.Rows = append(t.Rows,
		joinRow("MPI radix join", mpiPT),
		joinRow("DFI radix join", dfiPT),
		joinRow("DFI replicate join", repPT),
	)
	t.Notes = append(t.Notes, fmt.Sprintf("replicate vs DFI radix: %.1f%% faster",
		(1-float64(repPT.Total)/float64(dfiPT.Total))*100))
	return []Table{t}, nil
}
