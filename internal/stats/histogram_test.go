package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: %v %v %v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
}

func TestExactStatsTracked(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{3 * time.Microsecond, time.Microsecond, 9 * time.Microsecond} {
		h.Record(d)
	}
	if h.Min() != time.Microsecond || h.Max() != 9*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != (13*time.Microsecond)/3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestQuantileAccuracyAgainstExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var all []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform between 100ns and 10ms.
		d := time.Duration(100 * rng.ExpFloat64() * float64(time.Microsecond))
		if d < 1 {
			d = 1
		}
		h.Record(d)
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		exact := all[int(q*float64(len(all)))]
		est := h.Quantile(q)
		rel := float64(est-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Fatalf("q=%.2f: est %v vs exact %v (%.1f%% error)", q, est, exact, rel*100)
		}
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Record(time.Duration(s%10_000_000) + 1)
		}
		last := time.Duration(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Quantile(0) == h.Min() && h.Quantile(1) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 200*time.Microsecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 90*time.Microsecond || med > 115*time.Microsecond {
		t.Fatalf("merged median = %v", med)
	}
}

func TestResetClears(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestFprintScalesBarsByGroupSum(t *testing.T) {
	// Regression: bars used to scale by peak-per-bucket × group size, which
	// undersized the final partial group and rendered zero-width bars for
	// small nonzero groups. The dominant group must reach full width and
	// every nonzero group must show at least one mark.
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond) // one dominant bucket
	}
	h.Record(900 * time.Microsecond) // lone far-away sample → tiny final group
	var sb strings.Builder
	h.Fprint(&sb, 4)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected ≥2 bars, got:\n%s", sb.String())
	}
	max := 0
	for i, ln := range lines[1:] { // skip the summary line
		width := strings.Count(ln, "#")
		if width > max {
			max = width
		}
		// Every line ends with the group's sample sum; a nonzero group
		// must render at least one mark.
		if width == 0 && !strings.HasSuffix(ln, " 0") {
			t.Fatalf("bar %d has zero width for a nonzero group:\n%s", i, sb.String())
		}
	}
	if max != 40 {
		t.Fatalf("dominant group width = %d, want full scale 40:\n%s", max, sb.String())
	}
}

func TestEachVisitsOccupiedBuckets(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Microsecond)
	h.Record(time.Microsecond)
	h.Record(time.Millisecond)
	var total uint64
	var last time.Duration
	calls := 0
	h.Each(func(upper time.Duration, count uint64) {
		calls++
		if upper <= last {
			t.Fatalf("upper bounds not ascending: %v after %v", upper, last)
		}
		last = upper
		if count == 0 {
			t.Fatal("Each visited an empty bucket")
		}
		total += count
	})
	if calls != 2 || total != 3 {
		t.Fatalf("calls=%d total=%d, want 2 buckets covering 3 samples", calls, total)
	}
}

func TestFprint(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(1+i%7) * time.Microsecond)
	}
	var sb strings.Builder
	h.Fprint(&sb, 8)
	out := sb.String()
	for _, want := range []string{"n=1000", "p95=", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
