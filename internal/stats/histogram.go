// Package stats provides a log-bucketed duration histogram for latency
// recording — constant memory regardless of sample count, with quantile
// estimation bounded by the bucket resolution (≤ ~2.4% relative error).
// The consensus load generator records per-request latencies with it.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// bucketsPerOctave subdivides each power of two; 32 sub-buckets bound the
// relative quantile error to 2^(1/32) − 1 ≈ 2.2%.
const bucketsPerOctave = 32

// maxOctaves covers 1 ns .. ~9 s.
const maxOctaves = 33

// Histogram accumulates durations in logarithmic buckets.
type Histogram struct {
	counts [maxOctaves * bucketsPerOctave]uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Nanosecond {
		return 0
	}
	f := float64(d.Nanoseconds())
	idx := int(math.Log2(f) * bucketsPerOctave)
	if idx < 0 {
		idx = 0
	}
	if idx >= len((&Histogram{}).counts) {
		idx = len((&Histogram{}).counts) - 1
	}
	return idx
}

// bucketValue returns a representative duration for bucket i (geometric
// midpoint of the bucket's range).
func bucketValue(i int) time.Duration {
	lo := math.Exp2(float64(i) / bucketsPerOctave)
	hi := math.Exp2(float64(i+1) / bucketsPerOctave)
	return time.Duration(math.Sqrt(lo * hi))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Min and Max return the exact extremes of the recorded samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the exact arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) within the bucket
// resolution. The estimate is clamped to the exact [Min, Max] range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.n > 0 {
		if h.n == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Fprint renders a compact summary plus an ASCII bar chart of the
// occupied region.
func (h *Histogram) Fprint(w io.Writer, bars int) {
	fmt.Fprintf(w, "n=%d min=%v p50=%v p95=%v p99=%v max=%v mean=%v\n",
		h.n, h.min, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max, h.Mean())
	if h.n == 0 || bars <= 0 {
		return
	}
	lo, hi := -1, -1
	var peak uint64
	for i, c := range h.counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	span := hi - lo + 1
	group := (span + bars - 1) / bars
	for b := lo; b <= hi; b += group {
		var sum uint64
		for i := b; i < b+group && i <= hi; i++ {
			sum += h.counts[i]
		}
		width := int(float64(sum) / float64(peak*uint64(group)) * 40)
		fmt.Fprintf(w, "%12v %s %d\n", bucketValue(b).Round(10*time.Nanosecond),
			strings.Repeat("#", width), sum)
	}
}
