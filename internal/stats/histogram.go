// Package stats provides a log-bucketed duration histogram for latency
// recording — constant memory regardless of sample count, with quantile
// estimation bounded by the bucket resolution (≤ ~2.4% relative error).
// The consensus load generator records per-request latencies with it.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// bucketsPerOctave subdivides each power of two; 32 sub-buckets bound the
// relative quantile error to 2^(1/32) − 1 ≈ 2.2%.
const bucketsPerOctave = 32

// maxOctaves covers 1 ns .. ~9 s.
const maxOctaves = 33

// numBuckets is the total bucket count.
const numBuckets = maxOctaves * bucketsPerOctave

// Histogram accumulates durations in logarithmic buckets.
type Histogram struct {
	counts [numBuckets]uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Nanosecond {
		return 0
	}
	f := float64(d.Nanoseconds())
	idx := int(math.Log2(f) * bucketsPerOctave)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket i's range.
func bucketUpper(i int) time.Duration {
	return time.Duration(math.Exp2(float64(i+1) / bucketsPerOctave))
}

// bucketValue returns a representative duration for bucket i (geometric
// midpoint of the bucket's range).
func bucketValue(i int) time.Duration {
	lo := math.Exp2(float64(i) / bucketsPerOctave)
	hi := math.Exp2(float64(i+1) / bucketsPerOctave)
	return time.Duration(math.Sqrt(lo * hi))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Min and Max return the exact extremes of the recorded samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the exact arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) within the bucket
// resolution. The estimate is clamped to the exact [Min, Max] range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.n > 0 {
		if h.n == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Each calls f for every occupied bucket in ascending order with the
// bucket's exclusive upper bound and its sample count — the shape a
// cumulative-bucket exporter (e.g. Prometheus `le` series) folds from.
func (h *Histogram) Each(f func(upper time.Duration, count uint64)) {
	for i, c := range h.counts {
		if c > 0 {
			f(bucketUpper(i), c)
		}
	}
}

// Fprint renders a compact summary plus an ASCII bar chart of the
// occupied region.
func (h *Histogram) Fprint(w io.Writer, bars int) {
	fmt.Fprintf(w, "n=%d min=%v p50=%v p95=%v p99=%v max=%v mean=%v\n",
		h.n, h.min, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max, h.Mean())
	if h.n == 0 || bars <= 0 {
		return
	}
	lo, hi := -1, -1
	for i, c := range h.counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	span := hi - lo + 1
	group := (span + bars - 1) / bars
	// Two passes: bars scale against the largest *group* sum, not
	// peak-per-bucket × group — the latter undersized the final partial
	// group (fewer than `group` buckets) and, with many sparse buckets
	// per group, could undersize every bar.
	type row struct {
		at  time.Duration
		sum uint64
	}
	var rows []row
	var peakSum uint64
	for b := lo; b <= hi; b += group {
		var sum uint64
		for i := b; i < b+group && i <= hi; i++ {
			sum += h.counts[i]
		}
		if sum > peakSum {
			peakSum = sum
		}
		rows = append(rows, row{bucketValue(b).Round(10 * time.Nanosecond), sum})
	}
	for _, r := range rows {
		width := int(float64(r.sum) / float64(peakSum) * 40)
		if width == 0 && r.sum > 0 {
			width = 1 // a nonzero group always shows a mark
		}
		fmt.Fprintf(w, "%12v %s %d\n", r.at, strings.Repeat("#", width), r.sum)
	}
}
