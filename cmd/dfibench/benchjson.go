package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The benchjson subcommand turns `go test -bench -benchmem` output into a
// JSON regression record and compares runs against a committed baseline:
//
//	go test -run '^$' -bench Fig7 -benchmem . | dfibench benchjson -update BENCH_PR4.json
//	go test -run '^$' -bench Fig7 -benchmem . | dfibench benchjson -compare BENCH_PR4.json
//
// Comparison policy: wall-clock ns/op may regress by at most the
// tolerance (10% default, BENCH_TOLERANCE overrides); every custom
// metric (GiB/s, mpi-over-dfi, ...) is a *virtual-time* result of the
// deterministic simulation and must match the baseline exactly — a
// virtual drift means the change altered simulated behavior, not just
// host speed. allocs/op is also a hard gate: allocation counts don't
// depend on host speed, and per-op allocation creep is exactly how the
// zero-alloc steady-state data path decays (a small absolute slack
// absorbs runtime warm-up jitter). A baseline benchmark missing from
// the run is always a hard failure: a renamed or deleted benchmark (or
// a pattern typo) must not let the gate pass vacuously.
//
// On hosts that differ from the one that recorded the baseline (shared
// CI runners), wall-clock comparison is noise: -wallclock-advisory (or
// BENCH_WALLCLOCK=advisory) reports ns/op regressions as warnings while
// the machine-independent virtual metrics stay the hard gate.

// benchResult is one benchmark's parsed measurements.
type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the on-disk record: the frozen pre-change baseline and
// the most recent run.
type benchFile struct {
	Note     string                 `json:"note,omitempty"`
	Baseline map[string]benchResult `json:"baseline"`
	Current  map[string]benchResult `json:"current,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench reads `go test -bench` output and returns the per-benchmark
// measurements. Unit tokens follow their values: "123 ns/op 11.46 GiB/s".
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := benchResult{Metrics: make(map[string]float64)}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on %q", fields[i], m[1])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out[m[1]] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	return out, nil
}

func benchjsonMain(args []string) {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	update := fs.String("update", "", "record the run as `file`'s current section (baseline set on first write, frozen after)")
	compare := fs.String("compare", "", "compare the run against `file`'s baseline; non-zero exit on regression")
	tolerance := fs.Float64("tolerance", 0.10, "allowed relative wall-clock regression")
	advisory := fs.Bool("wallclock-advisory", false, "report wall-clock regressions as warnings instead of failures (cross-host runs)")
	fs.Parse(args)
	if *update == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -update or -compare")
		os.Exit(2)
	}
	if env := os.Getenv("BENCH_TOLERANCE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad BENCH_TOLERANCE %q\n", env)
			os.Exit(2)
		}
		*tolerance = v
	}
	if env := os.Getenv("BENCH_WALLCLOCK"); env != "" {
		switch env {
		case "advisory":
			*advisory = true
		case "gate":
			*advisory = false
		default:
			fmt.Fprintf(os.Stderr, "benchjson: bad BENCH_WALLCLOCK %q (want advisory or gate)\n", env)
			os.Exit(2)
		}
	}

	got, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *update != "" {
		bf := loadBenchFile(*update)
		if bf.Baseline == nil {
			bf.Baseline = got
		}
		bf.Current = got
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: recorded %d benchmarks in %s\n", len(got), *update)
	}

	if *compare != "" {
		bf := loadBenchFile(*compare)
		if bf.Baseline == nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no baseline\n", *compare)
			os.Exit(1)
		}
		wall, hard := compareRuns(bf.Baseline, got, *tolerance)
		if *advisory {
			for _, f := range wall {
				fmt.Fprintln(os.Stderr, "benchjson: WARN (advisory):", f)
			}
		} else {
			hard = append(wall, hard...)
		}
		if len(hard) > 0 {
			for _, f := range hard {
				fmt.Fprintln(os.Stderr, "benchjson: FAIL:", f)
			}
			os.Exit(1)
		}
		if *advisory {
			fmt.Printf("benchjson: %d benchmarks, virtual metrics identical (wall-clock advisory: %d warnings)\n",
				len(got), len(wall))
		} else {
			fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline, virtual metrics identical\n",
				len(got), *tolerance*100)
		}
	}
}

func loadBenchFile(path string) *benchFile {
	bf := &benchFile{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return bf
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := json.Unmarshal(data, bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	return bf
}

// compareRuns checks got against base and returns wall-clock failures
// (host-speed-dependent, may be demoted to warnings) separately from
// hard failures (virtual-metric drift and coverage holes). A baseline
// benchmark absent from the run is a hard failure — a rename, deletion,
// or pattern typo must not shrink the gated set silently; new benchmarks
// (present only in got) still enter the record via -update.
func compareRuns(base, got map[string]benchResult, tolerance float64) (wall, hard []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			hard = append(hard, fmt.Sprintf(
				"%s: in baseline but absent from this run (renamed, deleted, or not matched by the bench pattern)", name))
			continue
		}
		if b.NsOp > 0 && g.NsOp > b.NsOp*(1+tolerance) {
			wall = append(wall, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				name, g.NsOp, b.NsOp, tolerance*100))
		}
		// Allocation growth is host-independent and gated hard. The slack
		// (1% relative, floor of 2 allocs/op) only absorbs warm-up noise —
		// e.g. a map that grows once across all iterations.
		allocSlack := b.AllocsOp * 0.01
		if allocSlack < 2 {
			allocSlack = 2
		}
		if g.AllocsOp > b.AllocsOp+allocSlack {
			hard = append(hard, fmt.Sprintf(
				"%s: %.0f allocs/op exceeds baseline %.0f allocs/op (allocation regression on the data path)",
				name, g.AllocsOp, b.AllocsOp))
		}
		for _, unit := range sortedKeys(b.Metrics) {
			bv := b.Metrics[unit]
			gv, ok := g.Metrics[unit]
			if !ok {
				hard = append(hard, fmt.Sprintf("%s: virtual metric %q missing", name, unit))
				continue
			}
			if gv != bv {
				hard = append(hard, fmt.Sprintf(
					"%s: virtual metric %q drifted: %v != baseline %v (simulated behavior changed)",
					name, unit, gv, bv))
			}
		}
	}
	return wall, hard
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
