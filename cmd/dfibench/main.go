// Command dfibench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated RDMA fabric.
//
// Usage:
//
//	dfibench list                 # show available experiment IDs
//	dfibench fig7a [fig13 ...]    # run selected experiments
//	dfibench all                  # run the full suite
//	dfibench benchjson ...        # record/compare go-test bench output (see benchjson.go)
//
// Flags:
//
//	-quick   run at reduced scale (seconds instead of minutes)
//	-seed N  deterministic seed (default 1)
//
// All results are virtual-time measurements; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dfi/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "benchjson" {
		benchjsonMain(args[1:])
		return
	}
	if args[0] == "list" {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if args[0] == "all" {
		selected = experiments.All
	} else {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dfibench: unknown experiment %q (try 'dfibench list')\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	failed := false
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfibench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `dfibench — regenerate the DFI paper's evaluation (SIGMOD 2021)

usage: dfibench [-quick] [-seed N] <experiment-id>... | all | list
       dfibench benchjson [-update FILE] [-compare FILE] [-tolerance F]   (go test -bench output on stdin)
`)
	flag.PrintDefaults()
}
