// Command dfibench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated RDMA fabric.
//
// Usage:
//
//	dfibench list                 # show available experiment IDs
//	dfibench fig7a [fig13 ...]    # run selected experiments
//	dfibench all                  # run the full suite
//	dfibench benchjson ...        # record/compare go-test bench output (see benchjson.go)
//
// Flags:
//
//	-quick           run at reduced scale (seconds instead of minutes)
//	-seed N          deterministic seed (default 1)
//	-cpuprofile F    write a pprof CPU profile of the experiment run to F
//	-memprofile F    write a pprof heap profile (after the run) to F
//
// The profile flags exist so a CI bench job can attach profiles as build
// artifacts: a wall-clock or allocation regression flagged by the gate can
// then be diagnosed offline from the artifact instead of rerunning the
// workload locally. Profiles are flushed even when an experiment fails —
// the failing runs are the ones worth profiling.
//
// All results are virtual-time measurements; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dfi/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "deterministic seed")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write heap profile to `file`")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "benchjson" {
		benchjsonMain(args[1:])
		return
	}
	if args[0] == "list" {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if args[0] == "all" {
		selected = experiments.All
	} else {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dfibench: unknown experiment %q (try 'dfibench list')\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	// run is a separate function so its deferred profile writers execute
	// before the process exits (os.Exit skips defers).
	os.Exit(run(selected, opt, *cpuprofile, *memprofile))
}

func run(selected []experiments.Experiment, opt experiments.Options, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfibench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dfibench: -cpuprofile: %v\n", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dfibench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dfibench: -memprofile: %v\n", err)
			}
		}()
	}

	failed := false
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfibench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `dfibench — regenerate the DFI paper's evaluation (SIGMOD 2021)

usage: dfibench [-quick] [-seed N] [-cpuprofile F] [-memprofile F] <experiment-id>... | all | list
       dfibench benchjson [-update FILE] [-compare FILE] [-tolerance F]   (go test -bench output on stdin)
`)
	flag.PrintDefaults()
}
