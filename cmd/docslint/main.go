// Command docslint checks the repository's documentation invariants and
// exits non-zero listing every violation:
//
//  1. every Go package in the repository (internal/..., cmd/..., the
//     root) carries a godoc package comment ("Package x ..." — or
//     "Command x ..." for main packages) in at least one of its files;
//  2. every relative link in the repository's Markdown files resolves
//     to an existing file, and every fragment (#anchor, same-file or
//     cross-file) matches a heading of the linked document, using
//     GitHub's heading-to-anchor slug rules;
//  3. the audited packages (internal/transport and its backends —
//     the surface a future verbs backend must implement against)
//     carry a doc comment on every exported top-level declaration;
//  4. docs/OPERATIONS.md mentions every flag the CLIs register
//     (`cmd/dfiflow`, `cmd/dfibench`), so the operator's handbook
//     cannot silently fall behind a new flag.
//
// External links (http/https/mailto) are not fetched — the checker is
// offline and deterministic, suitable for CI (`make docs-lint`).
// Fenced code blocks are skipped so exemplar code in the docs cannot
// produce false positives.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkPackageComments(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkExportedDocs(root)...)
	problems = append(problems, checkFlagManifest(root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docslint:", p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// skipDir reports directories the walkers never descend into.
func skipDir(name string) bool {
	return name == ".git" || name == "bin" || name == "testdata" || strings.HasPrefix(name, ".")
}

// checkPackageComments walks every directory containing non-test Go
// files and verifies at least one file carries a package comment.
func checkPackageComments(root string) []string {
	var problems []string
	dirs := map[string][]string{}
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = append(dirs[filepath.Dir(path)], path)
		}
		return nil
	})
	for dir, files := range dirs {
		documented := false
		for _, f := range files {
			fset := token.NewFileSet()
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", f, err))
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment (add one, e.g. in doc.go)", dir))
		}
	}
	return problems
}

// auditedPackages are the directories whose exported surface is a
// contract (the transport layer a future verbs backend implements
// against): every exported top-level declaration must carry a doc
// comment, stating at minimum its concurrency contract.
var auditedPackages = []string{
	"internal/transport",
	"internal/transport/chanloop",
	"internal/transport/sharedring",
	"internal/transport/transporttest",
}

// checkExportedDocs verifies every exported top-level declaration in
// the audited packages is documented. Grouped declarations (a var/const
// block, or multiple names in one spec) are covered by a group comment.
func checkExportedDocs(root string) []string {
	var problems []string
	for _, pkg := range auditedPackages {
		dir := filepath.Join(root, pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: audited package missing: %v", pkg, err))
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			fset := token.NewFileSet()
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			for _, decl := range af.Decls {
				for _, name := range undocumentedExports(decl) {
					pos := fset.Position(decl.Pos())
					problems = append(problems, fmt.Sprintf(
						"%s:%d: exported %s has no doc comment (audited package: document it, including its concurrency contract)",
						path, pos.Line, name))
				}
			}
		}
	}
	return problems
}

// undocumentedExports returns the exported names a top-level
// declaration introduces without any covering doc comment.
func undocumentedExports(decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
			out = append(out, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, n.Name)
					}
				}
			}
		}
	}
	return out
}

// isExportedMethodOfUnexported reports an exported method whose
// receiver type is unexported — interface satisfaction plumbing, not
// public surface.
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// flagRe matches a flag registration: fs.Bool("name", ... or
// flag.String("name", ... — any receiver identifier, any flag kind.
var flagRe = regexp.MustCompile(`\b\w+\.(?:Bool|Int|Int64|Uint|Uint64|Float64|String|Duration)\(\s*"([^"]+)"`)

// flagCLIs are the commands whose registered flags docs/OPERATIONS.md
// must document.
var flagCLIs = []string{"cmd/dfiflow", "cmd/dfibench"}

// checkFlagManifest extracts every flag name registered by the CLI
// sources and requires a literal `-name` mention in
// docs/OPERATIONS.md.
func checkFlagManifest(root string) []string {
	opsPath := filepath.Join(root, "docs", "OPERATIONS.md")
	ops, err := os.ReadFile(opsPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: operator's handbook missing: %v", opsPath, err)}
	}
	text := string(ops)
	var problems []string
	for _, cli := range flagCLIs {
		dir := filepath.Join(root, cli)
		entries, err := os.ReadDir(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", cli, err))
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			for _, m := range flagRe.FindAllStringSubmatch(string(data), -1) {
				name := m[1]
				if !strings.Contains(text, "`-"+name+"`") {
					problems = append(problems, fmt.Sprintf(
						"%s: flag -%s registered in %s is not documented in %s (mention `-%s`)",
						opsPath, name, path, opsPath, name))
				}
			}
		}
	}
	return problems
}

// linkRe matches inline Markdown links [text](target). Images and
// reference-style links are out of scope for this repository.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// checkMarkdownLinks verifies every relative link target (and fragment)
// in the repository's Markdown files.
func checkMarkdownLinks(root string) []string {
	var problems []string
	var mdFiles []string
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	anchors := map[string]map[string]bool{} // md path → slug set
	for _, f := range mdFiles {
		anchors[f] = headingSlugs(f)
	}
	for _, f := range mdFiles {
		for _, link := range relativeLinks(f) {
			target, frag, _ := strings.Cut(link.target, "#")
			dest := f
			if target != "" {
				dest = filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(dest); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: dead link %q (no such file)", f, link.line, link.target))
					continue
				}
			}
			if frag == "" {
				continue
			}
			slugs, ok := anchors[dest]
			if !ok {
				if strings.HasSuffix(strings.ToLower(dest), ".md") {
					slugs = headingSlugs(dest)
					anchors[dest] = slugs
				} else {
					continue // fragment into a non-markdown file: not checkable
				}
			}
			if !slugs[strings.ToLower(frag)] {
				problems = append(problems, fmt.Sprintf("%s:%d: dead anchor %q (no heading %q in %s)", f, link.line, link.target, frag, dest))
			}
		}
	}
	return problems
}

// mdLink is one inline link occurrence.
type mdLink struct {
	target string
	line   int
}

// relativeLinks extracts the file's inline links that point at local
// targets, skipping fenced code blocks and external schemes.
func relativeLinks(path string) []mdLink {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []mdLink
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			t := m[1]
			if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") {
				continue
			}
			out = append(out, mdLink{target: t, line: i + 1})
		}
	}
	return out
}

// headingSlugs returns the GitHub-style anchor slugs of a Markdown
// file's headings (duplicates get -1, -2, ... suffixes).
func headingSlugs(path string) map[string]bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	slugs := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := seen[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		seen[slug]++
	}
	return slugs
}

// slugify lowers a heading into its GitHub anchor: lowercase, spaces to
// hyphens, punctuation (beyond hyphens and underscores) dropped.
// Inline-code backticks and emphasis markers are stripped first.
func slugify(heading string) string {
	heading = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		default:
			// dropped: punctuation, symbols, non-ASCII marks
		}
	}
	return b.String()
}
