package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dfi/internal/metrics"
)

func runToString(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String() + errb.String(), code
}

func TestTraceSummaryIncludesWireOverheadLine(t *testing.T) {
	// Regression: the recorder was created without wiring the fabric's
	// WireOverheadBytes through, so the "wire bytes incl. framing" line
	// never printed.
	out, code := runToString(t, "-mb", "1", "-trace", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wire bytes incl. 42 B/message framing overhead") {
		t.Fatalf("trace summary missing the wire-overhead line:\n%s", out)
	}
}

func TestTraceSummaryReportsDroppedSeparately(t *testing.T) {
	out, code := runToString(t, "-mb", "1", "-trace", "1",
		"-faults", "drop-write=0.05", "-retransmit", "50us", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"message bytes delivered", "bytes never delivered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace summary missing %q:\n%s", want, out)
		}
	}
}

func TestBadConfigExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-type", "bogus"},
		{"-faults", "no-such-key=1"},
		{"-partition", "bogus"},
		{"-evict", "notaspec"},
		{"-metrics-addr", "256.0.0.1:bad"},
		{"-transport", "bogus"},
	} {
		if _, code := runToString(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestChanTransportRunsFlow drives the goroutine/channel backend through
// the CLI: every pushed tuple must be consumed, with the trace recorder
// attached through the transport-neutral AttachRecorder path.
func TestChanTransportRunsFlow(t *testing.T) {
	for _, typ := range []string{"shuffle", "replicate"} {
		out, code := runToString(t, "-transport", "chan", "-type", typ,
			"-mb", "1", "-sources", "2", "-targets", "2", "-trace", "1")
		if code != 0 {
			t.Fatalf("%s: exit %d:\n%s", typ, code, out)
		}
		pushed := regexp.MustCompile(`tuples pushed:\s+(\d+)\s+\(consumed: (\d+)\)`).FindStringSubmatch(out)
		if pushed == nil {
			t.Fatalf("%s: no totals line:\n%s", typ, out)
		}
		want := pushed[1]
		if typ == "replicate" {
			// Every target consumes every tuple.
			n, _ := strconv.Atoi(pushed[1])
			want = strconv.Itoa(2 * n)
		}
		if pushed[2] != want {
			t.Errorf("%s: pushed %s, consumed %s (want %s)", typ, pushed[1], pushed[2], want)
		}
		if !strings.Contains(out, "traced ") {
			t.Errorf("%s: trace recorder produced no summary:\n%s", typ, out)
		}
	}
}

// TestChanTransportRejectsDESOnlyFlags pins the guard rail: flags whose
// machinery needs virtual time or the sim registry fail fast with a
// config error instead of being silently ignored.
func TestChanTransportRejectsDESOnlyFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-transport", "chan", "-faults", "drop-write=0.01"},
		{"-transport", "chan", "-lease", "100us"},
		{"-transport", "chan", "-evict", "1@300us"},
		{"-transport", "chan", "-replicas", "3"},
		{"-transport", "chan", "-multicast"},
		{"-transport", "chan", "-seed", "7"},
		{"-transport", "chan", "-metrics-addr", "127.0.0.1:0"},
		{"-transport", "chan", "-type", "combiner"},
	} {
		out, code := runToString(t, args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2\n%s", args, code, out)
		}
		if !strings.Contains(out, "-transport=chan") {
			t.Errorf("args %v: error does not name the transport flag:\n%s", args, out)
		}
	}
}

func TestEventsOutWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	out, code := runToString(t, "-mb", "1", "-events-out", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no events written")
	}
	for i, ln := range lines {
		var ev metrics.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		if ev.Type == "" || ev.Node == "" {
			t.Fatalf("line %d missing type/node: %s", i, ln)
		}
	}
}

// TestMetricsSmoke drives the full ops plane end to end: run a flow with
// a live metrics endpoint, scrape /metrics, /status and /events once the
// run finishes (during -linger), and assert the scraped counters agree
// exactly with the printed end-of-run summary.
func TestMetricsSmoke(t *testing.T) {
	pr, pw := io.Pipe()
	transcript := &bytes.Buffer{}
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			transcript.WriteString(sc.Text() + "\n")
			lines <- sc.Text()
		}
		close(lines)
	}()
	go func() {
		// The run lingers far longer than the test needs; the goroutine is
		// abandoned once the test has scraped (test binary exit unwinds it).
		run([]string{"-seed", "42", "-mb", "1", "-sources", "2", "-targets", "2",
			"-metrics-addr", "127.0.0.1:0", "-linger", "120s"}, pw, io.Discard)
		pw.Close()
	}()

	waitLine := func(re *regexp.Regexp) []string {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("output ended before %v matched:\n%s", re, transcript.String())
				}
				if m := re.FindStringSubmatch(ln); m != nil {
					return m
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %v:\n%s", re, transcript.String())
			}
		}
	}

	addr := waitLine(regexp.MustCompile(`^metrics: serving on http://(\S+) `))[1]
	totals := waitLine(regexp.MustCompile(`^tuples pushed:\s+(\d+)\s+\(consumed: (\d+)\)$`))
	waitLine(regexp.MustCompile(`^metrics: lingering`))

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return body
	}

	parsed, err := metrics.ParseText(bytes.NewReader(get("/metrics")))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for name, printed := range map[string]string{
		"dfi_source_tuples_pushed_total":   totals[1],
		"dfi_target_tuples_consumed_total": totals[2],
	} {
		if got := fmt.Sprintf("%.0f", metrics.SumSeries(parsed, name)); got != printed {
			t.Errorf("%s = %s, printed summary says %s", name, got, printed)
		}
	}
	if metrics.SumSeries(parsed, "dfi_registry_flows") != 1 {
		t.Errorf("dfi_registry_flows = %v, want 1", metrics.SumSeries(parsed, "dfi_registry_flows"))
	}

	var status struct {
		Flows []struct {
			Name string `json:"name"`
		} `json:"flows"`
	}
	if err := json.Unmarshal(get("/status"), &status); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if len(status.Flows) != 1 || status.Flows[0].Name != "dfiflow" {
		t.Fatalf("/status flows = %+v, want the dfiflow flow", status.Flows)
	}

	evLines := strings.Split(strings.TrimRight(string(get("/events")), "\n"), "\n")
	if len(evLines) == 0 || evLines[0] == "" {
		t.Fatal("/events returned no events")
	}
	var ev metrics.Event
	if err := json.Unmarshal([]byte(evLines[0]), &ev); err != nil {
		t.Fatalf("/events line is not valid JSON: %v", err)
	}
}
