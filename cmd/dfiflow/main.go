// Command dfiflow runs one ad-hoc DFI flow on the simulated fabric and
// prints per-endpoint statistics — a workbench for exploring flow
// configurations without writing a program.
//
// Examples:
//
//	dfiflow -type shuffle -sources 4 -targets 8 -tuple 256 -mb 64
//	dfiflow -type replicate -multicast -targets 8 -tuple 64 -mb 16
//	dfiflow -type replicate -multicast -ordered -loss 0.02 -mb 4
//	dfiflow -type combiner -sources 8 -tuple 64 -mb 32
//	dfiflow -type shuffle -latency -tuple 64 -mb 1
//	dfiflow -faults drop-write=0.01,delay=1us,jitter=3us -retransmit 50us -mb 4
//	dfiflow -faults crash=1@500us -retransmit 40us -srctimeout 300us -mb 1
//	dfiflow -lease 100us -faults crash=5@500us -sources 4 -targets 4 -mb 2
//	dfiflow -lease 100us -evict 1@300us -targets 4 -mb 2
//	dfiflow -partition ring -sources 4 -targets 8 -mb 16
//	dfiflow -partition ring -lease 100us -evict 1@300us -rejoin 1@600us -targets 4 -mb 2
//	dfiflow -replicas 3 -faults reg-crash-master=5us,reg-drop=0.1 -mb 1
//	dfiflow -replicas 3 -lease 100us -snapshot-every 16 -mb 2
//	dfiflow -replicas 5 -lease 50us -unlogged-renew -faults reg-crash-master=300us -mb 1
//	dfiflow -metrics-addr 127.0.0.1:0 -linger 30s -mb 4
//	dfiflow -lease 100us -evict 1@300us -events-out events.jsonl -mb 2
//	dfiflow -shared -sources 2 -targets 4 -tuple 64 -mb 4
//	dfiflow -shared -flows 500 -lease 100us -reg-shards 4 -mb 8
//	dfiflow -shared -tenant batch -tenant-weight 4 -mb 4
//	dfiflow -transport chan -shared -targets 4 -mb 16
//
// With -metrics-addr the process serves live introspection over HTTP
// while the flow runs: /metrics (Prometheus text exposition of the
// same counters the final summary prints), /status (JSON cluster
// snapshot: flows, leases, epochs, watermarks, replication), /events
// (JSONL dump of the structured event trace). -linger keeps the
// endpoint up after the run so the final counters can be scraped.
//
// With -shared the flow multiplexes over the transport's shared
// per-node-pair rings (connection scaling: memory and queue pairs per
// node pair, not per flow), -flows N runs N such flows concurrently,
// and -tenant/-tenant-weight feed the weighted credit scheduler that
// keeps one hot flow from starving its ring neighbors.
//
// The process exits non-zero when any endpoint reports ErrFlowBroken
// (a flow that could not be completed or repaired) or when a scheduled
// -rejoin is rejected, so fault scenarios are scriptable. Flag and
// configuration errors exit 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dfi/internal/core"
	"dfi/internal/core/partition"
	"dfi/internal/fabric"
	"dfi/internal/metrics"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
	"dfi/internal/transport"
	"dfi/internal/transport/sharedring"
)

// simRegistry is the slice of the registry surface dfiflow drives beyond
// core.Registry: administrative eviction, ops-plane wiring, and the
// lease-traffic counter. Satisfied by *registry.Registry (standalone or
// replicated) and *registry.Sharded.
type simRegistry interface {
	core.Registry
	Evict(p transport.Ctx, flow string, role registry.Role, idx int) error
	SetEventSink(metrics.EventSink)
	PublishMetrics(*metrics.Registry)
	Status() *registry.ClusterStatus
	LeaseRenewRPCs() uint64
}

// sharedIncompatible lists flags that configure per-flow machinery the
// shared-ring data path does not provide; the reasons mirror the core
// admission checks (internal/core/flow.go) so the CLI fails fast with
// the same story the library would tell.
var sharedIncompatible = map[string]string{
	"latency":    "shared rings batch slots for bandwidth; latency-optimized flows keep private rings",
	"multicast":  "switch multicast addresses per-flow multicast groups, not shared rings",
	"ordered":    "global ordering sequences a private multicast group",
	"gap-nacks":  "gap recovery belongs to the ordered multicast path",
	"retransmit": "loss recovery tracks private per-(source,target) rings",
	"srctimeout": "per-source silence detection reads private ring footers",
	"rejoin":     "evicted endpoints cannot re-attach to a shared ring (no private window to replay)",
}

// sharedOnly lists flags meaningless without -shared.
var sharedOnly = map[string]bool{"flows": true, "tenant": true, "tenant-weight": true}

// validateShared cross-checks the -shared flag family before any
// machinery spins up, naming each offending flag.
func validateShared(fs *flag.FlagSet, shared bool, flows int) error {
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if shared {
			if why, ok := sharedIncompatible[f.Name]; ok {
				bad = append(bad, fmt.Sprintf("-shared does not support -%s: %s", f.Name, why))
			}
		} else if sharedOnly[f.Name] {
			bad = append(bad, fmt.Sprintf("-%s requires -shared (it configures the shared-ring credit scheduler)", f.Name))
		}
	})
	if len(bad) > 0 {
		return errors.New(strings.Join(bad, "\n\t"))
	}
	if flows < 1 {
		return fmt.Errorf("-flows %d: want at least 1", flows)
	}
	return nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main's testable body: flags in, exit code out. Config errors
// return 2; a broken flow or rejected rejoin returns 1. Internal
// errors that cannot occur with a valid config still exit the process
// via log.Fatal.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dfiflow", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		transportF = fs.String("transport", "fabric", "transport backend: fabric (deterministic simulation) | chan (in-process goroutines, wall clock)")

		flowType  = fs.String("type", "shuffle", "flow type: shuffle | replicate | combiner")
		nSources  = fs.Int("sources", 2, "source threads (one node each)")
		nTargets  = fs.Int("targets", 2, "target threads (one node each; combiner: threads on one node)")
		tupleSize = fs.Int("tuple", 64, "tuple size in bytes (≥16)")
		megabytes = fs.Int("mb", 16, "payload volume per source in MiB")
		latency   = fs.Bool("latency", false, "latency-optimized instead of bandwidth-optimized")
		multicast = fs.Bool("multicast", false, "replicate flow: use switch multicast")
		ordered   = fs.Bool("ordered", false, "replicate flow: global ordering (implies -multicast)")
		loss      = fs.Float64("loss", 0, "multicast loss probability")
		gapNacks  = fs.Int("gap-nacks", 0, "ordered replicate: unanswered NACK rounds before a gap is skipped or escalated (0 = default 3)")
		segments  = fs.Int("segments", 32, "segments per ring")
		segSize   = fs.Int("segsize", 0, "segment payload size (0 = default)")
		seed      = fs.Int64("seed", 1, "deterministic seed")
		copyData  = fs.Bool("copy", false, "copy payload bytes (slower, validates content paths)")
		traceOps  = fs.Int("trace", 0, "record fabric operations; print the first N and a summary")
		faults    = fs.String("faults", "", "fault plan, e.g. drop-write=0.01,delay=1us,jitter=3us,dup=0.05,reorder=0.1,crash=1@500us")
		retrans   = fs.Duration("retransmit", 0, "enable source-side loss recovery with this stall timeout")
		srcTime   = fs.Duration("srctimeout", 0, "target-side failure detection: declare a source failed after this silence")
		lease     = fs.Duration("lease", 0, "lease-based membership: endpoint lease TTL (0 = disabled)")
		partMode  = fs.String("partition", "modulo", "key partitioning scheme: modulo | ring (bounded rebalance on eviction)")
		evictSpec = fs.String("evict", "", "administratively evict targets, e.g. 1@300us,2@400us")
		rejoin    = fs.String("rejoin", "", "re-attach evicted targets, e.g. 1@600us (requires -retransmit or -lease)")
		replicas  = fs.Int("replicas", 0, "replicate the registry over this many consensus replicas (odd, ≥3; 0 = standalone)")
		snapEvery = fs.Int("snapshot-every", 0, "replicated registry: snapshot+compact the log every N committed commands (0 = default cadence, <0 = never)")
		unlogRen  = fs.Bool("unlogged-renew", false, "replicated registry: serve lease renewals without a log round (explicit heartbeat relaxation)")

		shared    = fs.Bool("shared", false, "multiplex the flow over shared per-node-pair rings instead of private per-(source,target) rings (connection scaling; see docs/OPERATIONS.md)")
		nFlows    = fs.Int("flows", 1, "run this many identical concurrent flows (requires -shared; total -mb volume splits across them)")
		tenant    = fs.String("tenant", "", "shared rings: attribute credit usage to this named tenant (default \"default\"; requires -shared)")
		tenWeight = fs.Int("tenant-weight", 0, "shared rings: credit-scheduler weight, slots divide among streams in proportion (default 1; requires -shared)")
		regShards = fs.Int("reg-shards", 0, "shard the registry's flow table over this many independent registries by flow-name hash (0/1 = unsharded)")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /status and /events over HTTP on this address while the flow runs (e.g. 127.0.0.1:0)")
		linger      = fs.Duration("linger", 0, "keep the metrics endpoint up this long after the run (requires -metrics-addr)")
		eventsCap   = fs.Int("events", 0, "per-node event ring capacity for the structured trace (0 = default 1024)")
		eventsOut   = fs.String("events-out", "", "write the structured event trace as JSONL to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := validateShared(fs, *shared, *nFlows); err != nil {
		fmt.Fprintf(stderr, "dfiflow: %v\n", err)
		return 2
	}
	switch *transportF {
	case "fabric":
	case "chan":
		rejected := false
		fs.Visit(func(f *flag.Flag) {
			if why, ok := desOnlyFlags[f.Name]; ok {
				fmt.Fprintf(stderr, "dfiflow: -transport=chan does not support -%s: %s (see docs/ARCHITECTURE.md, transport backend matrix)\n", f.Name, why)
				rejected = true
			}
		})
		if rejected {
			return 2
		}
		if *flowType != "shuffle" && *flowType != "replicate" {
			fmt.Fprintf(stderr, "dfiflow: -transport=chan supports -type shuffle|replicate (combiner aggregation is fabric-only)\n")
			return 2
		}
		return runChan(chanConfig{
			flowType: *flowType, nSources: *nSources, nTargets: *nTargets,
			tupleSize: *tupleSize, megabytes: *megabytes, latency: *latency,
			segments: *segments, segSize: *segSize, traceOps: *traceOps,
			shared: *shared, tenant: *tenant, tenantWeight: *tenWeight,
		}, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "dfiflow: unknown transport %q (want fabric or chan)\n", *transportF)
		return 2
	}

	k := sim.New(*seed)
	k.Deadline = time.Hour
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = *copyData
	fcfg.MulticastLoss = *loss
	if *faults != "" {
		fp, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "dfiflow: -faults: %v\n", err)
			return 2
		}
		fcfg.Faults = fp
	}
	cluster := fabric.NewCluster(k, *nSources+*nTargets, fcfg)
	var rec *transport.Recorder
	if *traceOps > 0 {
		rec = transport.AttachRecorder(cluster, *traceOps)
		// The fabric's per-message framing overhead feeds the recorder's
		// wire-volume estimate; without it the Summary silently omitted
		// the "wire bytes" line.
		rec.WireOverheadBytes = fcfg.WireOverheadBytes
	}
	// The registry behind simRegistry: standalone, replicated, sharded,
	// or sharded-over-replicated-groups. regRepl keeps the concrete
	// replicated handle for the consensus summary line.
	var reg simRegistry
	var regRepl *registry.Registry
	rcfg := registry.ReplicaConfig{
		Replicas:      *replicas,
		Faults:        fcfg.Faults,
		SnapshotEvery: *snapEvery,
		UnloggedRenew: *unlogRen,
	}
	switch {
	case *regShards > 1 && *replicas > 0:
		sharded, err := registry.NewShardedReplicated(k, *regShards, rcfg)
		if err != nil {
			fmt.Fprintf(stderr, "dfiflow: -reg-shards/-replicas: %v\n", err)
			return 2
		}
		reg = sharded
	case *regShards > 1:
		sharded := registry.NewSharded(k, *regShards)
		sharded.UseFaults(fcfg.Faults)
		reg = sharded
	case *replicas > 0:
		var err error
		regRepl, err = registry.NewReplicated(k, rcfg)
		if err != nil {
			fmt.Fprintf(stderr, "dfiflow: -replicas: %v\n", err)
			return 2
		}
		reg = regRepl
	default:
		r := registry.New(k)
		r.UseFaults(fcfg.Faults)
		reg = r
	}

	// Ops plane: the metrics registry collects every layer's counters;
	// the event log receives structured protocol events (installed on
	// the registry before any endpoint opens, so endpoints inherit it).
	observing := *metricsAddr != "" || *eventsOut != ""
	var m *metrics.Registry
	var events *metrics.EventLog
	if observing {
		m = metrics.NewRegistry()
		events = metrics.NewEventLog(*eventsCap)
		reg.SetEventSink(events)
		reg.PublishMetrics(m)
		if rec != nil {
			rec.PublishMetrics(m)
		}
	}
	var srv *metrics.Server
	if *metricsAddr != "" {
		var err error
		srv, err = metrics.Serve(*metricsAddr, m, func() any { return reg.Status() }, events)
		if err != nil {
			fmt.Fprintf(stderr, "dfiflow: -metrics-addr: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: serving on http://%s (/metrics /status /events)\n", srv.Addr())
	}

	evictions, err := parseEvictions(*evictSpec)
	if err != nil {
		fmt.Fprintf(stderr, "dfiflow: -evict: %v\n", err)
		return 2
	}
	rejoins, err := parseEvictions(*rejoin) // same TARGET@TIME grammar
	if err != nil {
		fmt.Fprintf(stderr, "dfiflow: -rejoin: %v\n", err)
		return 2
	}
	rejoinAt := make(map[int]time.Duration)
	for _, rj := range rejoins {
		rejoinAt[rj.target] = rj.at
	}
	scheme, err := partition.ParseScheme(*partMode)
	if err != nil {
		fmt.Fprintf(stderr, "dfiflow: -partition: %v\n", err)
		return 2
	}

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(max(8, *tupleSize-8))},
	)

	spec := core.FlowSpec{Name: "dfiflow", Schema: sch, Options: core.Options{
		SegmentsPerRing:   *segments,
		SegmentSize:       *segSize,
		RetransmitTimeout: *retrans,
		SourceTimeout:     *srcTime,
		LeaseTTL:          *lease,
		GapNackLimit:      *gapNacks,
		Partitioning:      scheme,
		SharedRings:       *shared,
		Tenant:            *tenant,
		TenantWeight:      *tenWeight,
	}}
	if *latency {
		spec.Options.Optimization = core.OptimizeLatency
	}
	switch *flowType {
	case "shuffle":
	case "replicate":
		spec.Type = core.ReplicateFlow
		spec.Options.Multicast = *multicast || *ordered
		spec.Options.GlobalOrdering = *ordered
	case "combiner":
		if *shared {
			fmt.Fprintln(stderr, "dfiflow: -shared does not support -type combiner: in-network aggregation rides private combiner trees")
			return 2
		}
		spec.Type = core.CombinerFlow
		spec.Options.Aggregation = core.AggSum
	default:
		fmt.Fprintf(stderr, "dfiflow: unknown flow type %q\n", *flowType)
		return 2
	}
	if len(rejoinAt) > 0 && spec.Type == core.CombinerFlow {
		fmt.Fprintln(stderr, "dfiflow: -rejoin is not supported for combiner flows")
		return 2
	}
	for i := 0; i < *nSources; i++ {
		spec.Sources = append(spec.Sources, core.Endpoint{Node: cluster.Node(i)})
	}
	for i := 0; i < *nTargets; i++ {
		node := cluster.Node(*nSources + i)
		if spec.Type == core.CombinerFlow {
			node = cluster.Node(*nSources) // combiner: one target node
		}
		spec.Targets = append(spec.Targets, core.Endpoint{Node: node, Thread: i})
	}

	// With -flows N the same topology runs N times concurrently (the
	// shared rings multiplex all of them over one link per node pair);
	// the -mb volume splits across the fleet so totals stay comparable.
	flowName := func(f int) string {
		if *nFlows == 1 {
			return "dfiflow"
		}
		return fmt.Sprintf("dfiflow-%d", f)
	}
	specs := make([]core.FlowSpec, *nFlows)
	for f := range specs {
		specs[f] = spec
		specs[f].Name = flowName(f)
	}

	perSource := (*megabytes << 20) / sch.TupleSize() / *nFlows
	srcStats := make([]core.SourceStats, *nFlows**nSources)
	tgtStats := make([]core.TargetStats, *nFlows**nTargets)
	var end sim.Time
	// Endpoint errors stop the endpoint but not the run when faults or
	// evictions were injected; ErrFlowBroken turns into a non-zero exit.
	injected := *faults != "" || *evictSpec != ""
	brokenFlow := false
	rejoinFailed := false
	epDied := func(kind string, idx int, err error) {
		if !injected {
			log.Fatal(err)
		}
		if errors.Is(err, core.ErrFlowBroken) {
			brokenFlow = true
		}
		fmt.Fprintf(stdout, "%s %d: %v\n", kind, idx, err)
	}

	k.Spawn("init", func(p *sim.Proc) {
		for f := range specs {
			if err := core.FlowInit(p, reg, cluster, specs[f]); err != nil {
				log.Fatal(err)
			}
		}
	})
	for _, ev := range evictions {
		ev := ev
		k.Spawn(fmt.Sprintf("evict%d", ev.target), func(p *sim.Proc) {
			p.Sleep(ev.at)
			// With -flows the strike hits the slot in every flow.
			for f := 0; f < *nFlows; f++ {
				if err := reg.Evict(p, flowName(f), registry.RoleTarget, ev.target); err != nil {
					fmt.Fprintf(stdout, "evict target %d: %v\n", ev.target, err)
				}
			}
		})
	}
	for fi := 0; fi < *nFlows; fi++ {
		fi := fi
		for si := 0; si < *nSources; si++ {
			si := si
			k.Spawn(fmt.Sprintf("src%d.%d", fi, si), func(p *sim.Proc) {
				src, err := core.SourceOpen(p, reg, flowName(fi), si)
				if err != nil {
					log.Fatal(err)
				}
				if m != nil {
					src.PublishMetrics(m)
					if *shared {
						// Idempotent: registers ring/tenant series as links
						// come into existence.
						sharedring.PoolOf(cluster, sharedring.Config{}).PublishMetrics(m)
					}
				}
				tup := sch.NewTuple()
				rng := p.Rand()
				for i := 0; i < perSource; i++ {
					sch.PutInt64(tup, 0, rng.Int63())
					if err := src.Push(p, tup); err != nil {
						// Expected under an injected crash: report, stop pushing.
						epDied("source", si, fmt.Errorf("push: %w", err))
						break
					}
				}
				if err := src.Close(p); err != nil {
					epDied("source", si, fmt.Errorf("close: %w", err))
				}
				srcStats[fi**nSources+si] = src.Stats()
			})
		}
		for ti := 0; ti < *nTargets; ti++ {
			ti := ti
			k.Spawn(fmt.Sprintf("tgt%d.%d", fi, ti), func(p *sim.Proc) {
				if spec.Type == core.CombinerFlow {
					ct, err := core.CombinerTargetOpen(p, reg, flowName(fi), ti)
					if err != nil {
						log.Fatal(err)
					}
					ct.Run(p)
				} else {
					tgt, err := core.TargetOpen(p, reg, flowName(fi), ti)
					if err != nil {
						log.Fatal(err)
					}
					if m != nil {
						tgt.PublishMetrics(m)
					}
					consume := func(tgt *core.Target) {
						for {
							if _, _, ok := tgt.ConsumeSegment(p); !ok {
								break
							}
						}
					}
					consume(tgt)
					if tgt.Evicted() {
						if *nFlows == 1 {
							fmt.Fprintf(stdout, "target %d: evicted from the flow membership\n", ti)
						} else {
							fmt.Fprintf(stdout, "target %d (%s): evicted from the flow membership\n", ti, flowName(fi))
						}
					}
					if at, ok := rejoinAt[ti]; ok {
						if at > p.Now() {
							p.Sleep(at - p.Now())
						}
						nt, err := tgt.Reattach(p)
						if err != nil {
							fmt.Fprintf(stdout, "target %d: rejoin rejected: %v\n", ti, err)
							rejoinFailed = true
						} else {
							fmt.Fprintf(stdout, "target %d: rejoined at %v, resumed from %d consumed tuples\n", ti, p.Now(), nt.ResumedFrom())
							consume(nt)
							tgt = nt
						}
					}
					if failed := tgt.FailedSources(); len(failed) > 0 {
						fmt.Fprintf(stdout, "target %d: sources declared failed: %v\n", ti, failed)
					}
					tgtStats[fi**nTargets+ti] = tgt.Stats()
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	var pushed, consumed, payload uint64
	for _, s := range srcStats {
		pushed += s.TuplesPushed
		payload += s.PayloadBytes
	}
	for _, s := range tgtStats {
		consumed += s.TuplesConsumed
	}
	mode := ""
	if *shared {
		mode = " over shared rings"
	}
	if *nFlows == 1 {
		fmt.Fprintf(stdout, "flow: %s %s%s, %s partitioning, %d sources → %d targets, %s tuples, %d MiB/source\n",
			*flowType, spec.Options.Optimization, mode, scheme, *nSources, *nTargets, fmtBytes(sch.TupleSize()), *megabytes)
	} else {
		fmt.Fprintf(stdout, "fleet: %d %s flows%s, %d sources → %d targets each, %s tuples, %d MiB total\n",
			*nFlows, *flowType, mode, *nSources, *nTargets, fmtBytes(sch.TupleSize()), *megabytes)
	}
	fmt.Fprintf(stdout, "virtual runtime: %v\n", end)
	fmt.Fprintf(stdout, "tuples pushed:   %d  (consumed: %d)\n", pushed, consumed)
	bw := float64(payload) / end.Seconds() / (1 << 30)
	fmt.Fprintf(stdout, "aggregate sender bandwidth: %.2f GiB/s (link speed %.2f GiB/s)\n",
		bw, fcfg.LinkBandwidth/(1<<30))
	if *nFlows == 1 {
		for si, s := range srcStats {
			fmt.Fprintf(stdout, "  source %d: %s\n", si, s)
		}
		for ti, s := range tgtStats {
			if spec.Type != core.CombinerFlow {
				fmt.Fprintf(stdout, "  target %d: %s\n", ti, s)
			}
		}
	}
	if *shared {
		// Shared-ring accounting. Residual occupancy after a drain is
		// normal: the sender's release mirror refreshes lazily on Send, so
		// the last consumed slots still count as held; CheckConservation
		// proves every held slot is attributed to a live stream.
		pool := sharedring.PoolOf(cluster, sharedring.Config{})
		pcfg := pool.Config()
		links := pool.Links()
		fmt.Fprintf(stdout, "shared rings: %d links, %d slots × %s payload each\n",
			len(links), pcfg.Slots, fmtBytes(pcfg.SlotPayload))
		for _, l := range links {
			conserved := "conserved"
			if err := l.CheckConservation(); err != nil {
				conserved = fmt.Sprintf("CONSERVATION VIOLATED: %v", err)
			}
			fmt.Fprintf(stdout, "  ring %d→%d: occupancy=%d released=%d credits %s\n",
				l.Src().ID(), l.Dst().ID(), l.Occupancy(), l.Released(), conserved)
		}
		tname := *tenant
		if tname == "" {
			tname = "default"
		}
		tc := pool.Tenant(tname)
		fmt.Fprintf(stdout, "tenant %q: credits acquired=%d refunded=%d\n",
			tname, tc.Acquired.Load(), tc.Refunded.Load())
	}
	if *lease > 0 {
		fmt.Fprintf(stdout, "lease renewals: %d registry round trips\n", reg.LeaseRenewRPCs())
	}
	if regRepl != nil {
		fmt.Fprintf(stdout, "registry: %d replicas, master=%d ballot=%d elections=%d snapshots=%d snap-index=%d log-len=%d applied=%d\n",
			regRepl.Replicas(), regRepl.Master(), regRepl.Ballot(), regRepl.Elections(),
			regRepl.Snapshots(), regRepl.SnapshotIndex(), regRepl.LogLen(), regRepl.AppliedSize())
	}
	if events != nil {
		fmt.Fprintf(stdout, "events: %d emitted\n", events.Total())
	}
	if rec != nil {
		fmt.Fprintln(stdout)
		rec.Log(stdout)
		rec.Summary(stdout, 5)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintf(stderr, "dfiflow: -events-out: %v\n", err)
			return 1
		}
		written, droppedEv, err := events.WriteJSONL(f)
		cerr := f.Close()
		if err != nil || cerr != nil {
			fmt.Fprintf(stderr, "dfiflow: -events-out: write: %v\n", errors.Join(err, cerr))
			return 1
		}
		fmt.Fprintf(stdout, "events: wrote %d to %s (%d dropped by ring eviction)\n", written, *eventsOut, droppedEv)
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(stdout, "metrics: lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	if brokenFlow || rejoinFailed {
		return 1
	}
	return 0
}

// eviction is one parsed -evict entry: evict the target slot at the
// virtual time.
type eviction struct {
	target int
	at     time.Duration
}

// parseEvictions parses the -evict flag: comma-separated TARGET@TIME.
func parseEvictions(spec string) ([]eviction, error) {
	if spec == "" {
		return nil, nil
	}
	var out []eviction
	for _, field := range strings.Split(spec, ",") {
		idx, at, ok := strings.Cut(strings.TrimSpace(field), "@")
		if !ok {
			return nil, fmt.Errorf("%q: want TARGET@TIME", field)
		}
		target, err := strconv.Atoi(idx)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
		t, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
		out = append(out, eviction{target: target, at: t})
	}
	return out, nil
}

// parseFaults builds a fabric.FaultPlan from a comma-separated key=value
// spec. Probabilities: drop-write, drop-read, drop-send, drop-atomic, dup,
// reorder, reg-drop. Durations: delay, jitter, reg-delay, reg-jitter,
// reg-crash-master. Crashes: crash=NODE@TIME (repeatable).
func parseFaults(spec string) (*fabric.FaultPlan, error) {
	fp := &fabric.FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", field)
		}
		prob := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		var err error
		switch key {
		case "drop-write":
			fp.DropWrite, err = prob()
		case "drop-read":
			fp.DropRead, err = prob()
		case "drop-send":
			fp.DropSend, err = prob()
		case "drop-atomic":
			fp.DropAtomic, err = prob()
		case "dup":
			fp.Duplicate, err = prob()
		case "reorder":
			fp.Reorder, err = prob()
		case "delay":
			fp.Delay, err = time.ParseDuration(val)
		case "jitter":
			fp.DelayJitter, err = time.ParseDuration(val)
		case "reg-drop":
			fp.RegistryDrop, err = prob()
		case "reg-delay":
			fp.RegistryDelay, err = time.ParseDuration(val)
		case "reg-jitter":
			fp.RegistryJitter, err = time.ParseDuration(val)
		case "reg-crash-master":
			fp.RegistryCrashMaster, err = time.ParseDuration(val)
		case "crash":
			node, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want crash=NODE@TIME", field)
			}
			var id int
			if id, err = strconv.Atoi(node); err != nil {
				break
			}
			var t time.Duration
			if t, err = time.ParseDuration(at); err != nil {
				break
			}
			fp.CrashNode(id, t)
		default:
			return nil, fmt.Errorf("unknown fault key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
	}
	return fp, nil
}

func fmtBytes(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
