// Command dfiflow runs one ad-hoc DFI flow on the simulated fabric and
// prints per-endpoint statistics — a workbench for exploring flow
// configurations without writing a program.
//
// Examples:
//
//	dfiflow -type shuffle -sources 4 -targets 8 -tuple 256 -mb 64
//	dfiflow -type replicate -multicast -targets 8 -tuple 64 -mb 16
//	dfiflow -type replicate -multicast -ordered -loss 0.02 -mb 4
//	dfiflow -type combiner -sources 8 -tuple 64 -mb 32
//	dfiflow -type shuffle -latency -tuple 64 -mb 1
//	dfiflow -faults drop-write=0.01,delay=1us,jitter=3us -retransmit 50us -mb 4
//	dfiflow -faults crash=1@500us -retransmit 40us -srctimeout 300us -mb 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	var (
		flowType  = flag.String("type", "shuffle", "flow type: shuffle | replicate | combiner")
		nSources  = flag.Int("sources", 2, "source threads (one node each)")
		nTargets  = flag.Int("targets", 2, "target threads (one node each; combiner: threads on one node)")
		tupleSize = flag.Int("tuple", 64, "tuple size in bytes (≥16)")
		megabytes = flag.Int("mb", 16, "payload volume per source in MiB")
		latency   = flag.Bool("latency", false, "latency-optimized instead of bandwidth-optimized")
		multicast = flag.Bool("multicast", false, "replicate flow: use switch multicast")
		ordered   = flag.Bool("ordered", false, "replicate flow: global ordering (implies -multicast)")
		loss      = flag.Float64("loss", 0, "multicast loss probability")
		segments  = flag.Int("segments", 32, "segments per ring")
		segSize   = flag.Int("segsize", 0, "segment payload size (0 = default)")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		copyData  = flag.Bool("copy", false, "copy payload bytes (slower, validates content paths)")
		traceOps  = flag.Int("trace", 0, "record fabric operations; print the first N and a summary")
		faults    = flag.String("faults", "", "fault plan, e.g. drop-write=0.01,delay=1us,jitter=3us,dup=0.05,reorder=0.1,crash=1@500us")
		retrans   = flag.Duration("retransmit", 0, "enable source-side loss recovery with this stall timeout")
		srcTime   = flag.Duration("srctimeout", 0, "target-side failure detection: declare a source failed after this silence")
	)
	flag.Parse()

	k := sim.New(*seed)
	k.Deadline = time.Hour
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = *copyData
	fcfg.MulticastLoss = *loss
	if *faults != "" {
		fp, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfiflow: -faults: %v\n", err)
			os.Exit(2)
		}
		fcfg.Faults = fp
	}
	cluster := fabric.NewCluster(k, *nSources+*nTargets, fcfg)
	var rec *fabric.Recorder
	if *traceOps > 0 {
		rec = fabric.NewRecorder(*traceOps)
		cluster.SetTracer(rec)
	}
	reg := registry.New(k)

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(max(8, *tupleSize-8))},
	)

	spec := core.FlowSpec{Name: "dfiflow", Schema: sch, Options: core.Options{
		SegmentsPerRing:   *segments,
		SegmentSize:       *segSize,
		RetransmitTimeout: *retrans,
		SourceTimeout:     *srcTime,
	}}
	if *latency {
		spec.Options.Optimization = core.OptimizeLatency
	}
	switch *flowType {
	case "shuffle":
	case "replicate":
		spec.Type = core.ReplicateFlow
		spec.Options.Multicast = *multicast || *ordered
		spec.Options.GlobalOrdering = *ordered
	case "combiner":
		spec.Type = core.CombinerFlow
		spec.Options.Aggregation = core.AggSum
	default:
		fmt.Fprintf(os.Stderr, "dfiflow: unknown flow type %q\n", *flowType)
		os.Exit(2)
	}
	for i := 0; i < *nSources; i++ {
		spec.Sources = append(spec.Sources, core.Endpoint{Node: cluster.Node(i)})
	}
	for i := 0; i < *nTargets; i++ {
		node := cluster.Node(*nSources + i)
		if spec.Type == core.CombinerFlow {
			node = cluster.Node(*nSources) // combiner: one target node
		}
		spec.Targets = append(spec.Targets, core.Endpoint{Node: node, Thread: i})
	}

	perSource := (*megabytes << 20) / sch.TupleSize()
	srcStats := make([]core.SourceStats, *nSources)
	tgtStats := make([]core.TargetStats, *nTargets)
	var end sim.Time

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})
	for si := 0; si < *nSources; si++ {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "dfiflow", si)
			if err != nil {
				log.Fatal(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63())
				if err := src.Push(p, tup); err != nil {
					// Expected under an injected crash: report, stop pushing.
					if *faults == "" {
						log.Fatal(err)
					}
					fmt.Printf("source %d: push: %v\n", si, err)
					break
				}
			}
			if err := src.Close(p); err != nil {
				if *faults == "" {
					log.Fatal(err)
				}
				fmt.Printf("source %d: close: %v\n", si, err)
			}
			srcStats[si] = src.Stats()
		})
	}
	for ti := 0; ti < *nTargets; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			if spec.Type == core.CombinerFlow {
				ct, err := core.CombinerTargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				ct.Run(p)
			} else {
				tgt, err := core.TargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				for {
					if _, _, ok := tgt.ConsumeSegment(p); !ok {
						break
					}
				}
				if failed := tgt.FailedSources(); len(failed) > 0 {
					fmt.Printf("target %d: sources declared failed: %v\n", ti, failed)
				}
				tgtStats[ti] = tgt.Stats()
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	var pushed, consumed, payload uint64
	for _, s := range srcStats {
		pushed += s.TuplesPushed
		payload += s.PayloadBytes
	}
	for _, s := range tgtStats {
		consumed += s.TuplesConsumed
	}
	fmt.Printf("flow: %s %s, %d sources → %d targets, %s tuples, %d MiB/source\n",
		*flowType, spec.Options.Optimization, *nSources, *nTargets, fmtBytes(sch.TupleSize()), *megabytes)
	fmt.Printf("virtual runtime: %v\n", end)
	fmt.Printf("tuples pushed:   %d  (consumed: %d)\n", pushed, consumed)
	bw := float64(payload) / end.Seconds() / (1 << 30)
	fmt.Printf("aggregate sender bandwidth: %.2f GiB/s (link speed %.2f GiB/s)\n",
		bw, fcfg.LinkBandwidth/(1<<30))
	for si, s := range srcStats {
		fmt.Printf("  source %d: %s\n", si, s)
	}
	for ti, s := range tgtStats {
		if spec.Type != core.CombinerFlow {
			fmt.Printf("  target %d: %s\n", ti, s)
		}
	}
	if rec != nil {
		fmt.Println()
		rec.Log(os.Stdout)
		rec.Summary(os.Stdout, 5)
	}
}

// parseFaults builds a fabric.FaultPlan from a comma-separated key=value
// spec. Probabilities: drop-write, drop-read, drop-send, drop-atomic, dup,
// reorder. Durations: delay, jitter. Crashes: crash=NODE@TIME (repeatable).
func parseFaults(spec string) (*fabric.FaultPlan, error) {
	fp := &fabric.FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", field)
		}
		prob := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		var err error
		switch key {
		case "drop-write":
			fp.DropWrite, err = prob()
		case "drop-read":
			fp.DropRead, err = prob()
		case "drop-send":
			fp.DropSend, err = prob()
		case "drop-atomic":
			fp.DropAtomic, err = prob()
		case "dup":
			fp.Duplicate, err = prob()
		case "reorder":
			fp.Reorder, err = prob()
		case "delay":
			fp.Delay, err = time.ParseDuration(val)
		case "jitter":
			fp.DelayJitter, err = time.ParseDuration(val)
		case "crash":
			node, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want crash=NODE@TIME", field)
			}
			var id int
			if id, err = strconv.Atoi(node); err != nil {
				break
			}
			var t time.Duration
			if t, err = time.ParseDuration(at); err != nil {
				break
			}
			fp.CrashNode(id, t)
		default:
			return nil, fmt.Errorf("unknown fault key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
	}
	return fp, nil
}

func fmtBytes(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
