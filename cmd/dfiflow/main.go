// Command dfiflow runs one ad-hoc DFI flow on the simulated fabric and
// prints per-endpoint statistics — a workbench for exploring flow
// configurations without writing a program.
//
// Examples:
//
//	dfiflow -type shuffle -sources 4 -targets 8 -tuple 256 -mb 64
//	dfiflow -type replicate -multicast -targets 8 -tuple 64 -mb 16
//	dfiflow -type replicate -multicast -ordered -loss 0.02 -mb 4
//	dfiflow -type combiner -sources 8 -tuple 64 -mb 32
//	dfiflow -type shuffle -latency -tuple 64 -mb 1
//	dfiflow -faults drop-write=0.01,delay=1us,jitter=3us -retransmit 50us -mb 4
//	dfiflow -faults crash=1@500us -retransmit 40us -srctimeout 300us -mb 1
//	dfiflow -lease 100us -faults crash=5@500us -sources 4 -targets 4 -mb 2
//	dfiflow -lease 100us -evict 1@300us -targets 4 -mb 2
//	dfiflow -partition ring -sources 4 -targets 8 -mb 16
//	dfiflow -partition ring -lease 100us -evict 1@300us -rejoin 1@600us -targets 4 -mb 2
//	dfiflow -replicas 3 -faults reg-crash-master=5us,reg-drop=0.1 -mb 1
//	dfiflow -replicas 3 -lease 100us -snapshot-every 16 -mb 2
//	dfiflow -replicas 5 -lease 50us -unlogged-renew -faults reg-crash-master=300us -mb 1
//
// The process exits non-zero when any endpoint reports ErrFlowBroken
// (a flow that could not be completed or repaired) or when a scheduled
// -rejoin is rejected, so fault scenarios are scriptable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dfi/internal/core"
	"dfi/internal/core/partition"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	var (
		flowType  = flag.String("type", "shuffle", "flow type: shuffle | replicate | combiner")
		nSources  = flag.Int("sources", 2, "source threads (one node each)")
		nTargets  = flag.Int("targets", 2, "target threads (one node each; combiner: threads on one node)")
		tupleSize = flag.Int("tuple", 64, "tuple size in bytes (≥16)")
		megabytes = flag.Int("mb", 16, "payload volume per source in MiB")
		latency   = flag.Bool("latency", false, "latency-optimized instead of bandwidth-optimized")
		multicast = flag.Bool("multicast", false, "replicate flow: use switch multicast")
		ordered   = flag.Bool("ordered", false, "replicate flow: global ordering (implies -multicast)")
		loss      = flag.Float64("loss", 0, "multicast loss probability")
		segments  = flag.Int("segments", 32, "segments per ring")
		segSize   = flag.Int("segsize", 0, "segment payload size (0 = default)")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		copyData  = flag.Bool("copy", false, "copy payload bytes (slower, validates content paths)")
		traceOps  = flag.Int("trace", 0, "record fabric operations; print the first N and a summary")
		faults    = flag.String("faults", "", "fault plan, e.g. drop-write=0.01,delay=1us,jitter=3us,dup=0.05,reorder=0.1,crash=1@500us")
		retrans   = flag.Duration("retransmit", 0, "enable source-side loss recovery with this stall timeout")
		srcTime   = flag.Duration("srctimeout", 0, "target-side failure detection: declare a source failed after this silence")
		lease     = flag.Duration("lease", 0, "lease-based membership: endpoint lease TTL (0 = disabled)")
		partMode  = flag.String("partition", "modulo", "key partitioning scheme: modulo | ring (bounded rebalance on eviction)")
		evictSpec = flag.String("evict", "", "administratively evict targets, e.g. 1@300us,2@400us")
		rejoin    = flag.String("rejoin", "", "re-attach evicted targets, e.g. 1@600us (requires -retransmit or -lease)")
		replicas  = flag.Int("replicas", 0, "replicate the registry over this many consensus replicas (odd, ≥3; 0 = standalone)")
		snapEvery = flag.Int("snapshot-every", 0, "replicated registry: snapshot+compact the log every N committed commands (0 = default cadence, <0 = never)")
		unlogRen  = flag.Bool("unlogged-renew", false, "replicated registry: serve lease renewals without a log round (explicit heartbeat relaxation)")
	)
	flag.Parse()

	k := sim.New(*seed)
	k.Deadline = time.Hour
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = *copyData
	fcfg.MulticastLoss = *loss
	if *faults != "" {
		fp, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfiflow: -faults: %v\n", err)
			os.Exit(2)
		}
		fcfg.Faults = fp
	}
	cluster := fabric.NewCluster(k, *nSources+*nTargets, fcfg)
	var rec *fabric.Recorder
	if *traceOps > 0 {
		rec = fabric.NewRecorder(*traceOps)
		cluster.SetTracer(rec)
	}
	var reg *registry.Registry
	if *replicas > 0 {
		var err error
		reg, err = registry.NewReplicated(k, registry.ReplicaConfig{
			Replicas:      *replicas,
			Faults:        fcfg.Faults,
			SnapshotEvery: *snapEvery,
			UnloggedRenew: *unlogRen,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfiflow: -replicas: %v\n", err)
			os.Exit(2)
		}
	} else {
		reg = registry.New(k)
		reg.UseFaults(fcfg.Faults)
	}

	evictions, err := parseEvictions(*evictSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfiflow: -evict: %v\n", err)
		os.Exit(2)
	}
	rejoins, err := parseEvictions(*rejoin) // same TARGET@TIME grammar
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfiflow: -rejoin: %v\n", err)
		os.Exit(2)
	}
	rejoinAt := make(map[int]time.Duration)
	for _, rj := range rejoins {
		rejoinAt[rj.target] = rj.at
	}
	scheme, err := partition.ParseScheme(*partMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfiflow: -partition: %v\n", err)
		os.Exit(2)
	}

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(max(8, *tupleSize-8))},
	)

	spec := core.FlowSpec{Name: "dfiflow", Schema: sch, Options: core.Options{
		SegmentsPerRing:   *segments,
		SegmentSize:       *segSize,
		RetransmitTimeout: *retrans,
		SourceTimeout:     *srcTime,
		LeaseTTL:          *lease,
		Partitioning:      scheme,
	}}
	if *latency {
		spec.Options.Optimization = core.OptimizeLatency
	}
	switch *flowType {
	case "shuffle":
	case "replicate":
		spec.Type = core.ReplicateFlow
		spec.Options.Multicast = *multicast || *ordered
		spec.Options.GlobalOrdering = *ordered
	case "combiner":
		spec.Type = core.CombinerFlow
		spec.Options.Aggregation = core.AggSum
	default:
		fmt.Fprintf(os.Stderr, "dfiflow: unknown flow type %q\n", *flowType)
		os.Exit(2)
	}
	if len(rejoinAt) > 0 && spec.Type == core.CombinerFlow {
		fmt.Fprintln(os.Stderr, "dfiflow: -rejoin is not supported for combiner flows")
		os.Exit(2)
	}
	for i := 0; i < *nSources; i++ {
		spec.Sources = append(spec.Sources, core.Endpoint{Node: cluster.Node(i)})
	}
	for i := 0; i < *nTargets; i++ {
		node := cluster.Node(*nSources + i)
		if spec.Type == core.CombinerFlow {
			node = cluster.Node(*nSources) // combiner: one target node
		}
		spec.Targets = append(spec.Targets, core.Endpoint{Node: node, Thread: i})
	}

	perSource := (*megabytes << 20) / sch.TupleSize()
	srcStats := make([]core.SourceStats, *nSources)
	tgtStats := make([]core.TargetStats, *nTargets)
	var end sim.Time
	// Endpoint errors stop the endpoint but not the run when faults or
	// evictions were injected; ErrFlowBroken turns into a non-zero exit.
	injected := *faults != "" || *evictSpec != ""
	brokenFlow := false
	rejoinFailed := false
	epDied := func(kind string, idx int, err error) {
		if !injected {
			log.Fatal(err)
		}
		if errors.Is(err, core.ErrFlowBroken) {
			brokenFlow = true
		}
		fmt.Printf("%s %d: %v\n", kind, idx, err)
	}

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})
	for _, ev := range evictions {
		ev := ev
		k.Spawn(fmt.Sprintf("evict%d", ev.target), func(p *sim.Proc) {
			p.Sleep(ev.at)
			if err := reg.Evict(p, "dfiflow", registry.RoleTarget, ev.target); err != nil {
				fmt.Printf("evict target %d: %v\n", ev.target, err)
			}
		})
	}
	for si := 0; si < *nSources; si++ {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "dfiflow", si)
			if err != nil {
				log.Fatal(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63())
				if err := src.Push(p, tup); err != nil {
					// Expected under an injected crash: report, stop pushing.
					epDied("source", si, fmt.Errorf("push: %w", err))
					break
				}
			}
			if err := src.Close(p); err != nil {
				epDied("source", si, fmt.Errorf("close: %w", err))
			}
			srcStats[si] = src.Stats()
		})
	}
	for ti := 0; ti < *nTargets; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			if spec.Type == core.CombinerFlow {
				ct, err := core.CombinerTargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				ct.Run(p)
			} else {
				tgt, err := core.TargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				consume := func(tgt *core.Target) {
					for {
						if _, _, ok := tgt.ConsumeSegment(p); !ok {
							break
						}
					}
				}
				consume(tgt)
				if tgt.Evicted() {
					fmt.Printf("target %d: evicted from the flow membership\n", ti)
				}
				if at, ok := rejoinAt[ti]; ok {
					if at > p.Now() {
						p.Sleep(at - p.Now())
					}
					nt, err := tgt.Reattach(p)
					if err != nil {
						fmt.Printf("target %d: rejoin rejected: %v\n", ti, err)
						rejoinFailed = true
					} else {
						fmt.Printf("target %d: rejoined at %v, resumed from %d consumed tuples\n", ti, p.Now(), nt.ResumedFrom())
						consume(nt)
						tgt = nt
					}
				}
				if failed := tgt.FailedSources(); len(failed) > 0 {
					fmt.Printf("target %d: sources declared failed: %v\n", ti, failed)
				}
				tgtStats[ti] = tgt.Stats()
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	var pushed, consumed, payload uint64
	for _, s := range srcStats {
		pushed += s.TuplesPushed
		payload += s.PayloadBytes
	}
	for _, s := range tgtStats {
		consumed += s.TuplesConsumed
	}
	fmt.Printf("flow: %s %s, %s partitioning, %d sources → %d targets, %s tuples, %d MiB/source\n",
		*flowType, spec.Options.Optimization, scheme, *nSources, *nTargets, fmtBytes(sch.TupleSize()), *megabytes)
	fmt.Printf("virtual runtime: %v\n", end)
	fmt.Printf("tuples pushed:   %d  (consumed: %d)\n", pushed, consumed)
	bw := float64(payload) / end.Seconds() / (1 << 30)
	fmt.Printf("aggregate sender bandwidth: %.2f GiB/s (link speed %.2f GiB/s)\n",
		bw, fcfg.LinkBandwidth/(1<<30))
	for si, s := range srcStats {
		fmt.Printf("  source %d: %s\n", si, s)
	}
	for ti, s := range tgtStats {
		if spec.Type != core.CombinerFlow {
			fmt.Printf("  target %d: %s\n", ti, s)
		}
	}
	if *replicas > 0 {
		fmt.Printf("registry: %d replicas, master=%d ballot=%d elections=%d snapshots=%d snap-index=%d log-len=%d applied=%d\n",
			reg.Replicas(), reg.Master(), reg.Ballot(), reg.Elections(),
			reg.Snapshots(), reg.SnapshotIndex(), reg.LogLen(), reg.AppliedSize())
	}
	if rec != nil {
		fmt.Println()
		rec.Log(os.Stdout)
		rec.Summary(os.Stdout, 5)
	}
	if brokenFlow || rejoinFailed {
		os.Exit(1)
	}
}

// eviction is one parsed -evict entry: evict the target slot at the
// virtual time.
type eviction struct {
	target int
	at     time.Duration
}

// parseEvictions parses the -evict flag: comma-separated TARGET@TIME.
func parseEvictions(spec string) ([]eviction, error) {
	if spec == "" {
		return nil, nil
	}
	var out []eviction
	for _, field := range strings.Split(spec, ",") {
		idx, at, ok := strings.Cut(strings.TrimSpace(field), "@")
		if !ok {
			return nil, fmt.Errorf("%q: want TARGET@TIME", field)
		}
		target, err := strconv.Atoi(idx)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
		t, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
		out = append(out, eviction{target: target, at: t})
	}
	return out, nil
}

// parseFaults builds a fabric.FaultPlan from a comma-separated key=value
// spec. Probabilities: drop-write, drop-read, drop-send, drop-atomic, dup,
// reorder, reg-drop. Durations: delay, jitter, reg-delay, reg-jitter,
// reg-crash-master. Crashes: crash=NODE@TIME (repeatable).
func parseFaults(spec string) (*fabric.FaultPlan, error) {
	fp := &fabric.FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", field)
		}
		prob := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		var err error
		switch key {
		case "drop-write":
			fp.DropWrite, err = prob()
		case "drop-read":
			fp.DropRead, err = prob()
		case "drop-send":
			fp.DropSend, err = prob()
		case "drop-atomic":
			fp.DropAtomic, err = prob()
		case "dup":
			fp.Duplicate, err = prob()
		case "reorder":
			fp.Reorder, err = prob()
		case "delay":
			fp.Delay, err = time.ParseDuration(val)
		case "jitter":
			fp.DelayJitter, err = time.ParseDuration(val)
		case "reg-drop":
			fp.RegistryDrop, err = prob()
		case "reg-delay":
			fp.RegistryDelay, err = time.ParseDuration(val)
		case "reg-jitter":
			fp.RegistryJitter, err = time.ParseDuration(val)
		case "reg-crash-master":
			fp.RegistryCrashMaster, err = time.ParseDuration(val)
		case "crash":
			node, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want crash=NODE@TIME", field)
			}
			var id int
			if id, err = strconv.Atoi(node); err != nil {
				break
			}
			var t time.Duration
			if t, err = time.ParseDuration(at); err != nil {
				break
			}
			fp.CrashNode(id, t)
		default:
			return nil, fmt.Errorf("unknown fault key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("%q: %v", field, err)
		}
	}
	return fp, nil
}

func fmtBytes(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
