// Command dfiflow runs one ad-hoc DFI flow on the simulated fabric and
// prints per-endpoint statistics — a workbench for exploring flow
// configurations without writing a program.
//
// Examples:
//
//	dfiflow -type shuffle -sources 4 -targets 8 -tuple 256 -mb 64
//	dfiflow -type replicate -multicast -targets 8 -tuple 64 -mb 16
//	dfiflow -type replicate -multicast -ordered -loss 0.02 -mb 4
//	dfiflow -type combiner -sources 8 -tuple 64 -mb 32
//	dfiflow -type shuffle -latency -tuple 64 -mb 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	var (
		flowType  = flag.String("type", "shuffle", "flow type: shuffle | replicate | combiner")
		nSources  = flag.Int("sources", 2, "source threads (one node each)")
		nTargets  = flag.Int("targets", 2, "target threads (one node each; combiner: threads on one node)")
		tupleSize = flag.Int("tuple", 64, "tuple size in bytes (≥16)")
		megabytes = flag.Int("mb", 16, "payload volume per source in MiB")
		latency   = flag.Bool("latency", false, "latency-optimized instead of bandwidth-optimized")
		multicast = flag.Bool("multicast", false, "replicate flow: use switch multicast")
		ordered   = flag.Bool("ordered", false, "replicate flow: global ordering (implies -multicast)")
		loss      = flag.Float64("loss", 0, "multicast loss probability")
		segments  = flag.Int("segments", 32, "segments per ring")
		segSize   = flag.Int("segsize", 0, "segment payload size (0 = default)")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		copyData  = flag.Bool("copy", false, "copy payload bytes (slower, validates content paths)")
		traceOps  = flag.Int("trace", 0, "record fabric operations; print the first N and a summary")
	)
	flag.Parse()

	k := sim.New(*seed)
	k.Deadline = time.Hour
	fcfg := fabric.DefaultConfig()
	fcfg.CopyPayload = *copyData
	fcfg.MulticastLoss = *loss
	cluster := fabric.NewCluster(k, *nSources+*nTargets, fcfg)
	var rec *fabric.Recorder
	if *traceOps > 0 {
		rec = fabric.NewRecorder(*traceOps)
		cluster.SetTracer(rec)
	}
	reg := registry.New(k)

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(max(8, *tupleSize-8))},
	)

	spec := core.FlowSpec{Name: "dfiflow", Schema: sch, Options: core.Options{
		SegmentsPerRing: *segments,
		SegmentSize:     *segSize,
	}}
	if *latency {
		spec.Options.Optimization = core.OptimizeLatency
	}
	switch *flowType {
	case "shuffle":
	case "replicate":
		spec.Type = core.ReplicateFlow
		spec.Options.Multicast = *multicast || *ordered
		spec.Options.GlobalOrdering = *ordered
	case "combiner":
		spec.Type = core.CombinerFlow
		spec.Options.Aggregation = core.AggSum
	default:
		fmt.Fprintf(os.Stderr, "dfiflow: unknown flow type %q\n", *flowType)
		os.Exit(2)
	}
	for i := 0; i < *nSources; i++ {
		spec.Sources = append(spec.Sources, core.Endpoint{Node: cluster.Node(i)})
	}
	for i := 0; i < *nTargets; i++ {
		node := cluster.Node(*nSources + i)
		if spec.Type == core.CombinerFlow {
			node = cluster.Node(*nSources) // combiner: one target node
		}
		spec.Targets = append(spec.Targets, core.Endpoint{Node: node, Thread: i})
	}

	perSource := (*megabytes << 20) / sch.TupleSize()
	srcStats := make([]core.SourceStats, *nSources)
	tgtStats := make([]core.TargetStats, *nTargets)
	var end sim.Time

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})
	for si := 0; si < *nSources; si++ {
		si := si
		k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "dfiflow", si)
			if err != nil {
				log.Fatal(err)
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63())
				if err := src.Push(p, tup); err != nil {
					log.Fatal(err)
				}
			}
			src.Close(p)
			srcStats[si] = src.Stats()
		})
	}
	for ti := 0; ti < *nTargets; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			if spec.Type == core.CombinerFlow {
				ct, err := core.CombinerTargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				ct.Run(p)
			} else {
				tgt, err := core.TargetOpen(p, reg, "dfiflow", ti)
				if err != nil {
					log.Fatal(err)
				}
				for {
					if _, _, ok := tgt.ConsumeSegment(p); !ok {
						break
					}
				}
				tgtStats[ti] = tgt.Stats()
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	var pushed, consumed, payload uint64
	for _, s := range srcStats {
		pushed += s.TuplesPushed
		payload += s.PayloadBytes
	}
	for _, s := range tgtStats {
		consumed += s.TuplesConsumed
	}
	fmt.Printf("flow: %s %s, %d sources → %d targets, %s tuples, %d MiB/source\n",
		*flowType, spec.Options.Optimization, *nSources, *nTargets, fmtBytes(sch.TupleSize()), *megabytes)
	fmt.Printf("virtual runtime: %v\n", end)
	fmt.Printf("tuples pushed:   %d  (consumed: %d)\n", pushed, consumed)
	bw := float64(payload) / end.Seconds() / (1 << 30)
	fmt.Printf("aggregate sender bandwidth: %.2f GiB/s (link speed %.2f GiB/s)\n",
		bw, fcfg.LinkBandwidth/(1<<30))
	for si, s := range srcStats {
		fmt.Printf("  source %d: %s\n", si, s)
	}
	for ti, s := range tgtStats {
		if spec.Type != core.CombinerFlow {
			fmt.Printf("  target %d: %s\n", ti, s)
		}
	}
	if rec != nil {
		fmt.Println()
		rec.Log(os.Stdout)
		rec.Summary(os.Stdout, 5)
	}
}

func fmtBytes(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
