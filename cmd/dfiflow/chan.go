package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dfi/internal/core"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
	"dfi/internal/transport/chanloop"
	"dfi/internal/transport/sharedring"
)

// desOnlyFlags maps the dfiflow flags whose machinery lives in the DES
// to the reason each needs it: virtual time (seeds, fault plans,
// timeouts calibrated in simulated microseconds), the sim-backed
// registry (leases, eviction, rejoin, consensus replication, sharding)
// and the ops plane wired to it. -transport=chan rejects each one by
// name instead of silently ignoring it.
var desOnlyFlags = map[string]string{
	"faults":         "fault injection hooks into the simulated fabric",
	"retransmit":     "loss recovery timeouts are calibrated in virtual time",
	"srctimeout":     "failure detection timeouts are calibrated in virtual time",
	"lease":          "lease TTLs tick on the simulated clock",
	"evict":          "eviction schedules run on the simulated clock",
	"rejoin":         "rejoin schedules run on the simulated clock",
	"replicas":       "consensus replicas are simulated registry processes",
	"snapshot-every": "log snapshots belong to the replicated registry",
	"unlogged-renew": "heartbeat relaxation belongs to the replicated registry",
	"reg-shards":     "registry shards are simulated registry processes",
	"flows":          "concurrent-fleet orchestration runs on the simulated kernel",
	"loss":           "multicast loss is injected by the simulated switch",
	"multicast":      "switch multicast is a fabric primitive",
	"ordered":        "global ordering rides the simulated multicast group",
	"gap-nacks":      "gap recovery rides the simulated multicast group",
	"seed":           "the chan backend runs on wall clock, not a seeded DES",
	"copy":           "the chan backend always moves real bytes",
	"partition":      "rebalance schemes are exercised via simulated evictions",
	"metrics-addr":   "the ops plane scrapes sim-backed registries",
	"linger":         "the ops plane scrapes sim-backed registries",
	"events":         "the event trace is emitted by sim-backed registries",
	"events-out":     "the event trace is emitted by sim-backed registries",
}

// chanConfig is the flag subset -transport=chan supports.
type chanConfig struct {
	flowType     string
	nSources     int
	nTargets     int
	tupleSize    int
	megabytes    int
	latency      bool
	segments     int
	segSize      int
	traceOps     int
	shared       bool
	tenant       string
	tenantWeight int
}

// runChan runs the flow over the chanloop backend: real goroutines and
// real bytes under wall-clock time, same core data path as the DES run.
func runChan(cfg chanConfig, stdout, stderr io.Writer) int {
	net := chanloop.New()
	reg := registry.NewLocal()
	var rec *transport.Recorder
	if cfg.traceOps > 0 {
		rec = transport.AttachRecorder(net, cfg.traceOps)
	}

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "pad", Type: schema.Char(max(8, cfg.tupleSize-8))},
	)
	spec := core.FlowSpec{Name: "dfiflow", Schema: sch, Options: core.Options{
		SegmentsPerRing: cfg.segments,
		SegmentSize:     cfg.segSize,
		SharedRings:     cfg.shared,
		Tenant:          cfg.tenant,
		TenantWeight:    cfg.tenantWeight,
	}}
	if cfg.latency {
		spec.Options.Optimization = core.OptimizeLatency
	}
	if cfg.flowType == "replicate" {
		spec.Type = core.ReplicateFlow
	}
	for i := 0; i < cfg.nSources; i++ {
		spec.Sources = append(spec.Sources, core.Endpoint{Node: net.NewEndpoint()})
	}
	for i := 0; i < cfg.nTargets; i++ {
		spec.Targets = append(spec.Targets, core.Endpoint{Node: net.NewEndpoint(), Thread: i})
	}
	if err := core.FlowInit(net.NewCtx(), reg, net, spec); err != nil {
		fmt.Fprintf(stderr, "dfiflow: %v\n", err)
		return 2
	}

	perSource := (cfg.megabytes << 20) / sch.TupleSize()
	srcStats := make([]core.SourceStats, cfg.nSources)
	tgtStats := make([]core.TargetStats, cfg.nTargets)
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	fail := func(err error) {
		emu.Lock()
		errs = append(errs, err)
		emu.Unlock()
	}

	start := time.Now()
	for si := 0; si < cfg.nSources; si++ {
		si := si
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := net.NewCtx()
			src, err := core.SourceOpen(p, reg, "dfiflow", si)
			if err != nil {
				fail(fmt.Errorf("source %d: %w", si, err))
				return
			}
			tup := sch.NewTuple()
			rng := p.Rand()
			for i := 0; i < perSource; i++ {
				sch.PutInt64(tup, 0, rng.Int63())
				if err := src.Push(p, tup); err != nil {
					fail(fmt.Errorf("source %d: push: %w", si, err))
					return
				}
			}
			if err := src.Close(p); err != nil {
				fail(fmt.Errorf("source %d: close: %w", si, err))
				return
			}
			srcStats[si] = src.Stats()
		}()
	}
	for ti := 0; ti < cfg.nTargets; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := net.NewCtx()
			tgt, err := core.TargetOpen(p, reg, "dfiflow", ti)
			if err != nil {
				fail(fmt.Errorf("target %d: %w", ti, err))
				return
			}
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			tgtStats[ti] = tgt.Stats()
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	for _, err := range errs {
		fmt.Fprintf(stderr, "dfiflow: %v\n", err)
	}
	if len(errs) > 0 {
		return 1
	}

	var pushed, consumed, payload uint64
	for _, s := range srcStats {
		pushed += s.TuplesPushed
		payload += s.PayloadBytes
	}
	for _, s := range tgtStats {
		consumed += s.TuplesConsumed
	}
	mode := ""
	if cfg.shared {
		mode = " over shared rings"
	}
	fmt.Fprintf(stdout, "flow: %s %s%s over chan transport, %d sources → %d targets, %s tuples, %d MiB/source\n",
		cfg.flowType, spec.Options.Optimization, mode, cfg.nSources, cfg.nTargets, fmtBytes(sch.TupleSize()), cfg.megabytes)
	fmt.Fprintf(stdout, "wall runtime: %v\n", wall.Round(time.Microsecond))
	fmt.Fprintf(stdout, "tuples pushed:   %d  (consumed: %d)\n", pushed, consumed)
	fmt.Fprintf(stdout, "aggregate sender bandwidth: %.2f GiB/s (in-process memory copies)\n",
		float64(payload)/wall.Seconds()/(1<<30))
	for si, s := range srcStats {
		fmt.Fprintf(stdout, "  source %d: %s\n", si, s)
	}
	for ti, s := range tgtStats {
		fmt.Fprintf(stdout, "  target %d: %s\n", ti, s)
	}
	if cfg.shared {
		pool := sharedring.PoolOf(net, sharedring.Config{})
		links := pool.Links()
		fmt.Fprintf(stdout, "shared rings: %d links, %d slots × %s payload each\n",
			len(links), pool.Config().Slots, fmtBytes(pool.Config().SlotPayload))
		tname := cfg.tenant
		if tname == "" {
			tname = "default"
		}
		tc := pool.Tenant(tname)
		fmt.Fprintf(stdout, "tenant %q: credits acquired=%d refunded=%d\n",
			tname, tc.Acquired.Load(), tc.Refunded.Load())
	}
	if rec != nil {
		fmt.Fprintln(stdout)
		rec.Log(stdout)
		rec.Summary(stdout, 5)
	}
	return 0
}
