module dfi

go 1.22
