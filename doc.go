// Package dfi is a from-scratch Go reproduction of "DFI: The Data Flow
// Interface for High-Speed Networks" (Thostrup, Skrzypczak, Jasny,
// Ziegler, Binnig — SIGMOD 2021), built on a deterministic discrete-event
// simulation of an RDMA fabric instead of an InfiniBand testbed.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the paper-vs-measured results.
// The implementation lives under internal/: the DES kernel (sim), the
// simulated RDMA fabric (fabric), the DFI flow library itself (core), the
// mini-MPI baseline (mpi), and the paper's two use cases (join,
// consensus) plus the evaluation harness (experiments).
package dfi
