// Streaming example: "data duplication for stream processing" (paper
// §4.2.2). A sensor stream is duplicated with one multicast replicate
// flow to two independent consumer pipelines — a live windowed aggregator
// and an archival sink — without the producer paying its link twice.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

var eventSchema = schema.MustNew(
	schema.Column{Name: "ts", Type: schema.Int64}, // event time, µs
	schema.Column{Name: "sensor", Type: schema.Int64},
	schema.Column{Name: "reading", Type: schema.Int64},
)

const (
	events   = 50_000
	sensors  = 4
	windowUs = 1_000 // 1ms tumbling windows on event time
)

func main() {
	k := sim.New(5)
	cluster := fabric.NewCluster(k, 3, fabric.DefaultConfig())
	reg := registry.New(k)

	spec := core.FlowSpec{
		Name:    "sensor-stream",
		Type:    core.ReplicateFlow,
		Sources: []core.Endpoint{{Node: cluster.Node(0)}},
		Targets: []core.Endpoint{
			{Node: cluster.Node(1)}, // live aggregation
			{Node: cluster.Node(2)}, // archival
		},
		Schema:  eventSchema,
		Options: core.Options{Multicast: true},
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})

	// Producer: one sensor gateway emitting readings.
	k.Spawn("gateway", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "sensor-stream", 0)
		if err != nil {
			log.Fatal(err)
		}
		tup := eventSchema.NewTuple()
		rng := p.Rand()
		for i := 0; i < events; i++ {
			eventSchema.PutInt64(tup, 0, int64(i)) // µs-spaced event time
			eventSchema.PutInt64(tup, 1, int64(i%sensors))
			eventSchema.PutInt64(tup, 2, 20+rng.Int63n(10))
			if err := src.Push(p, tup); err != nil {
				log.Fatal(err)
			}
		}
		src.Close(p)
		st := src.Stats()
		fmt.Printf("gateway: %d events, %d segments multicast once on the wire\n",
			st.TuplesPushed, st.SegmentsWritten)
	})

	// Consumer 1: tumbling-window average per sensor.
	k.Spawn("aggregator", func(p *sim.Proc) {
		tgt, err := core.TargetOpen(p, reg, "sensor-stream", 0)
		if err != nil {
			log.Fatal(err)
		}
		type agg struct{ sum, n int64 }
		window := int64(-1)
		cur := map[int64]*agg{}
		windows := 0
		flush := func() {
			if window >= 0 {
				windows++
			}
			cur = map[int64]*agg{}
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				flush()
				break
			}
			w := eventSchema.Int64(tup, 0) / windowUs
			if w != window {
				flush()
				window = w
			}
			s := eventSchema.Int64(tup, 1)
			a := cur[s]
			if a == nil {
				a = &agg{}
				cur[s] = a
			}
			a.sum += eventSchema.Int64(tup, 2)
			a.n++
		}
		fmt.Printf("aggregator: closed %d tumbling windows of %dµs\n", windows, windowUs)
	})

	// Consumer 2: archival sink (just counts and checksums).
	k.Spawn("archiver", func(p *sim.Proc) {
		tgt, err := core.TargetOpen(p, reg, "sensor-stream", 1)
		if err != nil {
			log.Fatal(err)
		}
		var n, sum int64
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			n++
			sum += eventSchema.Int64(tup, 2)
		}
		fmt.Printf("archiver: stored %d events (checksum %d) at t=%v\n", n, sum, p.Now())
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}
