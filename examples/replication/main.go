// Replication example: a globally ordered multicast replicate flow with
// injected packet loss. Two source threads replicate a stream to three
// targets; DFI's tuple sequencer plus target-side reordering (paper §5.4,
// Figure 6) guarantee every target consumes the SAME global order even
// though the transport drops packets.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	k := sim.New(42)
	cfg := fabric.DefaultConfig()
	cfg.MulticastLoss = 0.05 // 5% of multicast deliveries dropped
	cluster := fabric.NewCluster(k, 5, cfg)
	reg := registry.New(k)

	sch := schema.MustNew(
		schema.Column{Name: "op", Type: schema.Int64},
		schema.Column{Name: "origin", Type: schema.Int64},
	)
	const perSource = 50

	spec := core.FlowSpec{
		Name: "replicated-log",
		Type: core.ReplicateFlow,
		Sources: []core.Endpoint{
			{Node: cluster.Node(0)}, {Node: cluster.Node(1)},
		},
		Targets: []core.Endpoint{
			{Node: cluster.Node(2)}, {Node: cluster.Node(3)}, {Node: cluster.Node(4)},
		},
		Schema: sch,
		Options: core.Options{
			Optimization:   core.OptimizeLatency,
			Multicast:      true,
			GlobalOrdering: true,
			GapTimeout:     10 * time.Microsecond,
		},
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})

	for si := 0; si < 2; si++ {
		si := si
		k.Spawn(fmt.Sprintf("source%d", si), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "replicated-log", si)
			if err != nil {
				log.Fatal(err)
			}
			tup := sch.NewTuple()
			for i := int64(0); i < perSource; i++ {
				sch.PutInt64(tup, 0, int64(si)*perSource+i)
				sch.PutInt64(tup, 1, int64(si))
				if err := src.Push(p, tup); err != nil {
					log.Fatal(err)
				}
			}
			src.Close(p)
		})
	}

	orders := make([][]int64, 3)
	for ti := 0; ti < 3; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("replica%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "replicated-log", ti)
			if err != nil {
				log.Fatal(err)
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				orders[ti] = append(orders[ti], sch.Int64(tup, 0))
			}
		})
	}

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("each replica consumed %d operations despite 5%% multicast loss\n", len(orders[0]))
	same := true
	for ti := 1; ti < 3; ti++ {
		for i := range orders[0] {
			if orders[ti][i] != orders[0][i] {
				same = false
			}
		}
	}
	fmt.Printf("identical global order on all replicas: %v\n", same)
	fmt.Printf("first ten operations on every replica: %v\n", orders[0][:10])
}
