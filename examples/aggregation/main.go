// Aggregation example: a distributed SQL-style GROUP BY executed once
// with a standard combiner flow (aggregation at the target node, paper
// §4.2.3) and once with the in-network reduction extension (the SHARP
// avenue the paper sketches), showing the identical results and the
// bandwidth difference.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// salesSchema: GROUP BY region, SUM(amount).
var salesSchema = schema.MustNew(
	schema.Column{Name: "region", Type: schema.Int64},
	schema.Column{Name: "amount", Type: schema.Int64},
)

const (
	senders   = 8
	perSender = 60_000
	regions   = 12
)

func pushSales(p *sim.Proc, src *core.Source, seed int64) {
	tup := salesSchema.NewTuple()
	for i := 0; i < perSender; i++ {
		region := (seed + int64(i)) % regions
		salesSchema.PutInt64(tup, 0, region)
		salesSchema.PutInt64(tup, 1, int64(i%100))
		if err := src.Push(p, tup); err != nil {
			log.Fatal(err)
		}
	}
	src.Close(p)
}

func runHostCombiner() ([]core.AggResult, sim.Time) {
	k := sim.New(1)
	cluster := fabric.NewCluster(k, senders+1, fabric.DefaultConfig())
	reg := registry.New(k)
	var sources []core.Endpoint
	for i := 0; i < senders; i++ {
		sources = append(sources, core.Endpoint{Node: cluster.Node(i)})
	}
	spec := core.FlowSpec{
		Name: "groupby", Type: core.CombinerFlow,
		Sources: sources,
		Targets: []core.Endpoint{{Node: cluster.Node(senders)}},
		Schema:  salesSchema,
		Options: core.Options{Aggregation: core.AggSum, GroupCol: 0, ValueCol: 1},
	}
	var results []core.AggResult
	var end sim.Time
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})
	for i := 0; i < senders; i++ {
		i := i
		k.Spawn(fmt.Sprintf("scan%d", i), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "groupby", i)
			if err != nil {
				log.Fatal(err)
			}
			pushSales(p, src, int64(i))
		})
	}
	k.Spawn("agg", func(p *sim.Proc) {
		ct, err := core.CombinerTargetOpen(p, reg, "groupby", 0)
		if err != nil {
			log.Fatal(err)
		}
		ct.Run(p)
		results = ct.Results()
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return results, end
}

func runSharpCombiner() ([]core.AggResult, sim.Time) {
	k := sim.New(1)
	cluster := fabric.NewCluster(k, senders+1, fabric.DefaultConfig())
	reg := registry.New(k)
	var sources []core.Endpoint
	for i := 0; i < senders; i++ {
		sources = append(sources, core.Endpoint{Node: cluster.Node(i)})
	}
	target := core.Endpoint{Node: cluster.Node(senders)}
	var results []core.AggResult
	var end sim.Time
	var sc *core.SharpCombiner
	k.Spawn("init", func(p *sim.Proc) {
		var err error
		sc, err = core.NewSharpCombiner(p, reg, cluster, "groupby-sharp", sources, target, salesSchema,
			core.SharpOptions{Aggregation: core.AggSum, GroupCol: 0, ValueCol: 1})
		if err != nil {
			log.Fatal(err)
		}
	})
	for i := 0; i < senders; i++ {
		i := i
		k.Spawn(fmt.Sprintf("scan%d", i), func(p *sim.Proc) {
			for sc == nil {
				p.Yield()
			}
			src, err := core.SourceOpen(p, reg, sc.IngestFlow(), i)
			if err != nil {
				log.Fatal(err)
			}
			pushSales(p, src, int64(i))
		})
	}
	k.Spawn("agg", func(p *sim.Proc) {
		for sc == nil {
			p.Yield()
		}
		st, err := sc.TargetOpenSharp(p, reg)
		if err != nil {
			log.Fatal(err)
		}
		st.Run(p)
		results = st.Results()
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return results, end
}

func main() {
	host, hostEnd := runHostCombiner()
	sharp, sharpEnd := runSharpCombiner()

	fmt.Printf("GROUP BY region, SUM(amount): %d senders × %d tuples, %d regions\n\n", senders, perSender, regions)
	fmt.Printf("%-8s %-14s %-14s\n", "region", "SUM (host)", "SUM (in-net)")
	same := len(host) == len(sharp)
	for i := range host {
		fmt.Printf("%-8d %-14d %-14d\n", host[i].Key, host[i].Value, sharp[i].Value)
		if sharp[i] != host[i] {
			same = false
		}
	}
	bytes := float64(senders * perSender * salesSchema.TupleSize())
	fmt.Printf("\nidentical results: %v\n", same)
	fmt.Printf("end-host combiner:    %v  (%.1f GiB/s aggregated)\n", hostEnd, bytes/hostEnd.Seconds()/(1<<30))
	fmt.Printf("in-network reduction: %v  (%.1f GiB/s aggregated)\n", sharpEnd, bytes/sharpEnd.Seconds()/(1<<30))
}
