// Quickstart: a key-shuffled DFI flow from one source thread to two
// target threads, mirroring the paper's Figure 1 example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	// One deterministic simulation kernel hosts the whole cluster.
	k := sim.New(1)
	cluster := fabric.NewCluster(k, 3, fabric.DefaultConfig())
	reg := registry.New(k)

	// DFI_Schema schema({"key", int},{"value", int});
	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "value", Type: schema.Int64},
	)

	// DFI_Flow_init(name, {n0}, {n1, n2}, schema, shuffle key = column 0)
	spec := core.FlowSpec{
		Name:       "quickstart",
		Sources:    []core.Endpoint{{Node: cluster.Node(0), Thread: 0}},
		Targets:    []core.Endpoint{{Node: cluster.Node(1), Thread: 0}, {Node: cluster.Node(2), Thread: 0}},
		Schema:     sch,
		ShuffleKey: 0,
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})

	// Source thread: push tuples {0..9, 10*key} and close the flow.
	k.Spawn("source", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "quickstart", 0)
		if err != nil {
			log.Fatal(err)
		}
		tup := sch.NewTuple()
		for i := int64(0); i < 10; i++ {
			sch.PutInt64(tup, 0, i)
			sch.PutInt64(tup, 1, 10*i)
			if err := src.Push(p, tup); err != nil {
				log.Fatal(err)
			}
		}
		src.Close(p)
	})

	// Target threads: consume until FLOW_END.
	for ti := 0; ti < 2; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("target%d", ti), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "quickstart", ti)
			if err != nil {
				log.Fatal(err)
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					fmt.Printf("target %d: flow end after %d tuples (t=%v)\n", ti, tgt.Consumed(), p.Now())
					return
				}
				fmt.Printf("target %d: consume {%d, %d}\n", ti, sch.Int64(tup, 0), sch.Int64(tup, 1))
			}
		})
	}

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}
