// Elastic flow example: the paper's future-work item "elasticity of
// flows to add/remove nodes at runtime" (§7), implemented as an
// extension. A shuffle flow starts with one producer; two more join
// mid-flight, one leaves, and a straggling producer is declared failed by
// the target's failure detector.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	"dfi/internal/core"
	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

func main() {
	k := sim.New(3)
	cluster := fabric.NewCluster(k, 5, fabric.DefaultConfig())
	reg := registry.New(k)

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "producer", Type: schema.Int64},
	)
	spec := core.FlowSpec{
		Name:    "elastic-demo",
		Sources: []core.Endpoint{{Node: cluster.Node(0)}},
		Targets: []core.Endpoint{{Node: cluster.Node(4)}},
		Schema:  sch,
		Options: core.Options{
			Elastic:       true,
			MaxSources:    4,
			SourceTimeout: 300 * time.Microsecond,
		},
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, cluster, spec); err != nil {
			log.Fatal(err)
		}
	})

	produce := func(p *sim.Proc, src *core.Source, id int64, n int, crash bool) {
		tup := sch.NewTuple()
		for i := 0; i < n; i++ {
			sch.PutInt64(tup, 0, int64(i))
			sch.PutInt64(tup, 1, id)
			if err := src.Push(p, tup); err != nil {
				log.Fatal(err)
			}
		}
		if crash {
			src.Flush(p)
			fmt.Printf("t=%v  producer %d CRASHES without closing\n", p.Now(), id)
			return
		}
		src.Close(p)
		fmt.Printf("t=%v  producer %d closed\n", p.Now(), id)
	}

	k.Spawn("producer-0", func(p *sim.Proc) {
		src, err := core.SourceOpen(p, reg, "elastic-demo", 0)
		if err != nil {
			log.Fatal(err)
		}
		produce(p, src, 0, 800, false)
	})
	k.Spawn("producer-1", func(p *sim.Proc) {
		p.Sleep(20 * time.Microsecond)
		src, err := core.AttachSource(p, reg, "elastic-demo", core.Endpoint{Node: cluster.Node(1)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%v  producer 1 attached at runtime\n", p.Now())
		produce(p, src, 1, 800, false)
	})
	k.Spawn("producer-2", func(p *sim.Proc) {
		p.Sleep(40 * time.Microsecond)
		src, err := core.AttachSource(p, reg, "elastic-demo", core.Endpoint{Node: cluster.Node(2)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%v  producer 2 attached at runtime (will crash)\n", p.Now())
		produce(p, src, 2, 200, true)
	})
	k.Spawn("sealer", func(p *sim.Proc) {
		p.Sleep(150 * time.Microsecond)
		if err := core.Seal(p, reg, "elastic-demo"); err != nil {
			log.Fatal(err)
		}
		n, _ := core.Attached(p, reg, "elastic-demo")
		fmt.Printf("t=%v  flow sealed with %d attached producers\n", p.Now(), n)
	})

	k.Spawn("consumer", func(p *sim.Proc) {
		tgt, err := core.TargetOpen(p, reg, "elastic-demo", 0)
		if err != nil {
			log.Fatal(err)
		}
		perProducer := map[int64]int{}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			perProducer[sch.Int64(tup, 1)]++
		}
		fmt.Printf("t=%v  flow ended; tuples per producer: %v\n", p.Now(), perProducer)
		fmt.Printf("        failed producers detected: %v\n", tgt.FailedSources())
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
}
