// Radix join example: runs the paper's OLAP use case (§4.3.1) at laptop
// scale — the distributed radix hash join over two DFI shuffle flows,
// compared against the MPI baseline and the fragment-and-replicate
// variant.
//
//	go run ./examples/radixjoin
package main

import (
	"fmt"
	"log"

	"dfi/internal/join"
)

func main() {
	cfg := join.DefaultConfig()
	cfg.Nodes = 4
	cfg.WorkersPerNode = 4
	cfg.InnerTuples = 400_000
	cfg.OuterTuples = 400_000

	fmt.Printf("distributed join: %d nodes × %d workers, %d ⨝ %d tuples\n\n",
		cfg.Nodes, cfg.WorkersPerNode, cfg.InnerTuples, cfg.OuterTuples)

	mpiPT, err := join.RunMPIRadix(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPI radix join:      %v\n", mpiPT)

	dfiPT, err := join.RunDFIRadix(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFI radix join:      %v\n", dfiPT)

	// Figure 14's adaptability story: shrink the inner table 1000× and
	// swap the inner shuffle flow for a replicate flow.
	cfg.InnerTuples = cfg.OuterTuples / 1000
	repPT, err := join.RunDFIReplicateJoin(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFI replicate join (small inner): %v\n", repPT)

	fmt.Printf("\nDFI vs MPI speedup: %.2fx\n", float64(mpiPT.Total)/float64(dfiPT.Total))
}
