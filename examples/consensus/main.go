// Consensus example: the paper's state machine replication use case
// (§4.3.2, §6.3.2) — a replicated key-value store under YCSB's
// read-dominated workload, served by Multi-Paxos and NOPaxos built from
// DFI flows, compared against the DARE baseline.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"os"

	"dfi/internal/consensus"
	"dfi/internal/metrics"
)

func main() {
	cfg := consensus.DefaultConfig()
	cfg.Requests = 6000
	cfg.Rate = 600_000

	fmt.Printf("replicated KV store: %d replicas, %d clients on %d nodes, YCSB %.0f/%.0f\n\n",
		cfg.Replicas, cfg.Clients, cfg.ClientNodes, cfg.ReadFraction*100, (1-cfg.ReadFraction)*100)

	paxos, err := consensus.RunMultiPaxos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFI Multi-Paxos (4 flows, Figure 3):  %v\n", paxos)

	nopaxos, err := consensus.RunNOPaxos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFI NOPaxos (ordered multicast OUM):  %v\n", nopaxos)

	dare, err := consensus.RunDARE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DARE (hand-crafted RDMA, closed loop): %v\n", dare)

	fmt.Println("\nNOPaxos latency distribution:")
	nopaxos.Latencies.Fprint(os.Stdout, 10)

	// The same results in Prometheus text exposition — what a scraper
	// would ingest from a metrics endpoint.
	reg := metrics.NewRegistry()
	paxos.PublishMetrics(reg, "multipaxos")
	nopaxos.PublishMetrics(reg, "nopaxos")
	dare.PublishMetrics(reg, "dare")
	fmt.Println("\nPrometheus exposition:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
