// Top-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation (§6). Each runs the figure's headline
// measurement at a representative parameter point and reports the key
// metric via b.ReportMetric — virtual-time bandwidth in GiB/s, latency in
// µs, runtimes in virtual milliseconds, and request throughput in kreq/s.
//
//	go test -bench=. -benchmem .
//
// The full parameter sweeps (every series of every figure) are produced
// by cmd/dfibench; these benchmarks track the same code paths in a form
// the Go tooling can compare across revisions.
package dfi

import (
	"sync"
	"sync/atomic"
	"testing"

	"dfi/internal/consensus"
	"dfi/internal/core"
	"dfi/internal/experiments"
	"dfi/internal/join"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport/chanloop"
)

const benchSeed = 1

// BenchmarkFig7aShuffleBandwidth: 1:8 bandwidth-optimized shuffle, two
// source threads, 1 KiB tuples (a link-saturating point of Figure 7a).
func BenchmarkFig7aShuffleBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureShuffleBandwidth(benchSeed, 2, 1024, 8<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkFig7aShuffleBandwidthBatched: the same measurement with the
// senders pushing through PushBatch in 64-tuple chunks. The virtual
// GiB/s must match BenchmarkFig7aShuffleBandwidth; the ns/op delta is
// the host-side saving of the batched API.
func BenchmarkFig7aShuffleBandwidthBatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureShuffleBandwidthBatched(benchSeed, 2, 1024, 8<<20, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkFig7bShuffleLatency: median RTT of a 16-byte request/response
// over latency-optimized shuffle flows to 8 servers, plus the raw-verb
// overhead delta (Figure 7b).
func BenchmarkFig7bShuffleLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dfi, raw, err := experiments.MeasureShuffleRTT(benchSeed, 16, 8, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(dfi.Nanoseconds())/1e3, "rtt-µs")
		b.ReportMetric(float64((dfi - raw).Nanoseconds()), "overhead-ns")
	}
}

// BenchmarkFig7cScaleOut: aggregated N:N bandwidth on 4 servers × 4
// threads (Figure 7c).
func BenchmarkFig7cScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureScaleOut(benchSeed, 4, 4, 4<<20, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkMemoryConsumption: per-node registered ring memory of the 2
// servers × 4 threads configuration (§6.1.4; paper: 16 MiB).
func BenchmarkMemoryConsumption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bytes, err := experiments.MeasureFlowMemory(benchSeed, 2, 4, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(bytes)/(1<<20), "MiB/node")
	}
}

// BenchmarkFig8aReplicateNaive: 1:8 replicate flow, naive one-sided
// replication, 1 KiB tuples (Figure 8a; capped by the sender link).
func BenchmarkFig8aReplicateNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureReplicateBandwidth(benchSeed, 1, 1024, 8<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkFig8bReplicateMulticast: the same with switch multicast
// (Figure 8b; aggregate far beyond the sender link).
func BenchmarkFig8bReplicateMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureReplicateBandwidth(benchSeed, 1, 1024, 8<<20, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkFig8cReplicateLatency: time until all 8 targets acknowledged
// one replicated 64-byte request, multicast path (Figure 8c).
func BenchmarkFig8cReplicateLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.MeasureReplicateRTT(benchSeed, 64, 8, 100, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Nanoseconds())/1e3, "rtt-µs")
	}
}

// BenchmarkFig9Combiner: 8:1 combiner flow with SUM aggregation, 4 target
// threads, 256 B tuples (Figure 9; in-going link cap).
func BenchmarkFig9Combiner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureCombinerBandwidth(benchSeed, 256, 4, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkFig10aPointToPointST: single-threaded point-to-point transfer
// of 64 B tuples — DFI bandwidth-optimized vs the MPI baseline
// (Figure 10a; the metric is the MPI/DFI runtime ratio).
func BenchmarkFig10aPointToPointST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dfi, err := experiments.MeasureDFIPointToPoint(benchSeed, 64, 1, 4<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		mpi, err := experiments.MeasureMPIPointToPoint(benchSeed, 64, 1, 1<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dfi.Seconds()*1e3, "dfi-ms")
		b.ReportMetric((mpi.Seconds()*4)/dfi.Seconds(), "mpi-over-dfi")
	}
}

// BenchmarkFig10bPointToPointMT: 4-thread transfer — THREAD_MULTIPLE MPI
// collapses while DFI scales (Figure 10b; metric is the ratio of MPI-MT
// to DFI latency-optimized runtime at equal volume).
func BenchmarkFig10bPointToPointMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dfi, err := experiments.MeasureDFIPointToPoint(benchSeed, 64, 4, 1<<20, true)
		if err != nil {
			b.Fatal(err)
		}
		mpiMT, err := experiments.MeasureMPIPointToPoint(benchSeed, 64, 4, 1<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mpiMT)/float64(dfi), "mpiMT-over-dfi")
	}
}

// BenchmarkFig11CollectiveShuffle: 8:8 streaming shuffle of 64 B tuples,
// DFI push-per-tuple vs MPI_Alltoall on 8-tuple mini-batches (Figure 11).
func BenchmarkFig11CollectiveShuffle(b *testing.B) {
	const volume = 64 * 8 * 400
	for i := 0; i < b.N; i++ {
		dfi, err := experiments.MeasureStreamShuffle(benchSeed, 64, volume, 1)
		if err != nil {
			b.Fatal(err)
		}
		mpi, err := experiments.MeasureMiniBatchAlltoall(benchSeed, 64, volume)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mpi)/float64(dfi), "mpi-over-dfi")
	}
}

// BenchmarkFig12Straggler: 8:8 batched MPI shuffle vs streaming DFI
// shuffle with one node at half CPU speed (Figure 12).
func BenchmarkFig12Straggler(b *testing.B) {
	const volume = 4 << 20
	for i := 0; i < b.N; i++ {
		mpi, err := experiments.MeasureBatchedAlltoall(benchSeed, 256, volume, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		dfi, err := experiments.MeasureStreamShuffle(benchSeed, 256, volume, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mpi)/float64(dfi), "mpi-over-dfi")
	}
}

// BenchmarkFig13RadixJoin: distributed radix join, DFI vs MPI
// (Figure 13; metrics are DFI total runtime and the speedup).
func BenchmarkFig13RadixJoin(b *testing.B) {
	cfg := join.DefaultConfig()
	cfg.Nodes, cfg.WorkersPerNode = 4, 2
	cfg.InnerTuples, cfg.OuterTuples = 100_000, 100_000
	for i := 0; i < b.N; i++ {
		dfi, err := join.RunDFIRadix(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mpi, err := join.RunMPIRadix(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dfi.Total.Seconds()*1e3, "dfi-ms")
		b.ReportMetric(float64(mpi.Total)/float64(dfi.Total), "speedup")
	}
}

// BenchmarkFig14JoinAdaptability: radix vs fragment-and-replicate join
// with a small inner relation (Figure 14; metric is the replicate join's
// runtime saving).
func BenchmarkFig14JoinAdaptability(b *testing.B) {
	cfg := join.DefaultConfig()
	cfg.Nodes, cfg.WorkersPerNode = 4, 2
	cfg.InnerTuples, cfg.OuterTuples = 200, 200_000
	for i := 0; i < b.N; i++ {
		radix, err := join.RunDFIRadix(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := join.RunDFIReplicateJoin(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-float64(rep.Total)/float64(radix.Total))*100, "saving-%")
	}
}

// BenchmarkFig15Consensus: the replicated KV store at 600k offered
// req/s — NOPaxos throughput and median latency (Figure 15).
func BenchmarkFig15Consensus(b *testing.B) {
	cfg := consensus.DefaultConfig()
	cfg.Requests = 2400
	cfg.Rate = 600_000
	for i := 0; i < b.N; i++ {
		res, err := consensus.RunNOPaxos(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput/1e3, "kreq/s")
		b.ReportMetric(float64(res.Median.Nanoseconds())/1e3, "median-µs")
	}
}

// BenchmarkSharpCombiner: the in-network aggregation extension (paper
// §4.2.3 future work): aggregated sender bandwidth of the switch-resident
// reduction vs the 11.64 GiB/s in-going link that caps Figure 9.
func BenchmarkSharpCombiner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := experiments.MeasureSharpCombiner(benchSeed, 64, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw/(1<<30), "GiB/s")
	}
}

// BenchmarkChanloopShuffle: the same shuffle data path (rings, footers,
// credits) on the chanloop backend — real goroutines moving real bytes
// under wall-clock time, no sim kernel. It reports no custom metrics on
// purpose: chanloop has no virtual time, so the bench gate for this
// benchmark is allocs/op (hard — allocation creep on the concurrent
// backend) and ns/op (advisory cross-host), keeping both backends under
// the regression harness.
func BenchmarkChanloopShuffle(b *testing.B) {
	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "value", Type: schema.Int64},
	)
	const tuples = 5000
	for i := 0; i < b.N; i++ {
		net := chanloop.New()
		eps := []*chanloop.Endpoint{net.NewEndpoint(), net.NewEndpoint(), net.NewEndpoint()}
		reg := registry.NewLocal()
		spec := core.FlowSpec{
			Name:       "bench",
			Sources:    []core.Endpoint{{Node: eps[0]}},
			Targets:    []core.Endpoint{{Node: eps[1]}, {Node: eps[2]}},
			Schema:     sch,
			ShuffleKey: 0,
		}
		if err := core.FlowInit(net.NewCtx(), reg, net, spec); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := net.NewCtx()
			src, err := core.SourceOpen(p, reg, "bench", 0)
			if err != nil {
				b.Error(err)
				return
			}
			tup := sch.NewTuple()
			for j := int64(0); j < tuples; j++ {
				sch.PutInt64(tup, 0, j)
				sch.PutInt64(tup, 1, 10*j)
				if err := src.Push(p, tup); err != nil {
					b.Error(err)
					return
				}
			}
			src.Close(p)
		}()
		var consumed int64
		for ti := 0; ti < 2; ti++ {
			ti := ti
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := net.NewCtx()
				tgt, err := core.TargetOpen(p, reg, "bench", ti)
				if err != nil {
					b.Error(err)
					return
				}
				n := int64(0)
				for {
					if _, ok := tgt.Consume(p); !ok {
						break
					}
					n++
				}
				atomic.AddInt64(&consumed, n)
			}()
		}
		wg.Wait()
		if consumed != tuples {
			b.Fatalf("consumed %d of %d tuples", consumed, tuples)
		}
	}
}
